//! Mixed-precision Chebyshev iteration: `f32` sweeps under an `f64`
//! Bi-CGSTAB recurrence.
//!
//! The solver is memory-bandwidth-bound and the Chebyshev
//! preconditioner's sweeps are the bulk of every iteration's streamed
//! bytes, so running them in single precision nearly halves both the
//! sweep traffic and the halo payloads. Because Bi-CGSTAB tolerates an
//! *inexact* preconditioner — it only has to stay a *fixed* linear
//! operator for the standard (non-flexible) recurrence to hold — the
//! inner iteration can round freely as long as it rounds the same way
//! every application, which a fixed `f32` polynomial does. The outer
//! recurrence stays in `f64`: its scalars (`ρ`, `α`, `ω`) and residual
//! are what convergence is measured with, and single precision there
//! would floor the achievable residual near `1e-7‖b‖`.
//!
//! The precision boundary is one rounding step on entry
//! ([`crate::kernels::cast_down`], round-to-nearest-even per element)
//! and an exact widening on exit ([`crate::kernels::cast_up`]); the
//! Chebyshev coefficients are computed on the host in `f64` (Eq. 15)
//! and rounded once per sweep, exactly as the `T_data = float` build of
//! the paper's templated kernels would.

use accel::{Device, Scalar};
use blockgrid::Field;
use comm::Communicator;
use stencil::{apply_physical_bcs, SpectralBounds};

use crate::cheby::ChebyMode;
use crate::ctx::RankCtx;
use crate::kernels::{
    cast_down, cast_up, INFO_CAST_DOWN, INFO_CAST_UP, INFO_CI1_F32, INFO_CI2_F32, INFO_SCALE_F32,
};

/// Refresh a single-precision field's ghost layers according to the
/// iteration's mode — the `f32` twin of the `f64` path, using the
/// half-width halo wire format.
fn refresh_ghosts_f32<T: Scalar, D: Device, C: Communicator<T>>(
    mode: ChebyMode,
    ctx: &RankCtx<T, D, C>,
    f: &mut Field<f32>,
) {
    match mode {
        ChebyMode::Global => {
            ctx.halo.exchange_f32(&ctx.dev, &ctx.comm, f);
            apply_physical_bcs(&ctx.grid, f, &ctx.recorder, false);
        }
        ChebyMode::GlobalNoComm | ChebyMode::BlockJacobi => {
            apply_physical_bcs(&ctx.grid, f, &ctx.recorder, true);
        }
    }
}

/// A Chebyshev iteration whose sweeps, state and halo traffic are all
/// `f32`, applied as a preconditioner inside an `f64` outer solve.
///
/// Mirrors [`crate::ChebyshevIteration`] sweep for sweep (including the
/// split-phase halo overlap of the `Global` mode); only the element
/// width differs. The `(θ, δ, σ)` parameters and the `ρ` recurrence
/// stay on the host in `f64` — each sweep's coefficients are rounded
/// to `f32` once, so the iteration is a *fixed* single-precision
/// polynomial in exact arithmetic terms.
pub struct MixedChebyshev {
    mode: ChebyMode,
    iterations: usize,
    overlap: bool,
    theta: f64,
    delta: f64,
    sigma: f64,
    b32: Field<f32>,
    z: Field<f32>,
    y: Field<f32>,
    w: Field<f32>,
}

impl MixedChebyshev {
    /// Configure the iteration for `ctx` with the given (already
    /// rescaled) spectral bounds and sweep count (`iterMax >= 1`).
    pub fn new<T: Scalar, D: Device, C: Communicator<T>>(
        ctx: &RankCtx<T, D, C>,
        mode: ChebyMode,
        bounds: SpectralBounds,
        iterations: usize,
    ) -> Self {
        assert!(iterations >= 1, "Chebyshev needs at least one sweep");
        assert!(
            bounds.min > 0.0 && bounds.max > bounds.min,
            "Chebyshev needs 0 < min < max, got {bounds:?}"
        );
        // Eq. 15, in full precision on the host.
        let theta = 0.5 * (bounds.max + bounds.min);
        let delta = 0.5 * (bounds.max - bounds.min);
        let sigma = theta / delta;
        Self {
            mode,
            iterations,
            overlap: true,
            theta,
            delta,
            sigma,
            b32: Field::zeros(&ctx.dev, &ctx.grid),
            z: Field::zeros(&ctx.dev, &ctx.grid),
            y: Field::zeros(&ctx.dev, &ctx.grid),
            w: Field::zeros(&ctx.dev, &ctx.grid),
        }
    }

    /// Enable or disable split-phase halo overlap in [`ChebyMode::Global`]
    /// (on by default; no effect in the communication-free modes). The
    /// sweeps are bitwise-identical either way.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Number of sweeps per application.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The iteration's communication flavour.
    pub fn mode(&self) -> ChebyMode {
        self.mode
    }

    /// The Chebyshev parameters `(θ, δ, σ)` of Eq. 15 (host `f64`).
    pub fn parameters(&self) -> (f64, f64, f64) {
        (self.theta, self.delta, self.sigma)
    }

    /// Run `iterMax` single-precision sweeps of Algorithm 4, writing
    /// `x ≈ A⁻¹ b` widened back to the outer precision. `b`'s interior
    /// is read once through the rounding down-cast; its `f64` ghosts are
    /// left untouched (the iteration refreshes its *own* `f32` ghosts).
    /// Returns the number of sweeps performed.
    pub fn solve<T: Scalar, D: Device, C: Communicator<T>>(
        &mut self,
        ctx: &RankCtx<T, D, C>,
        b: &Field<T>,
        x: &mut Field<T>,
    ) -> usize {
        // The precision boundary: one rounding step on entry.
        cast_down(&ctx.dev, INFO_CAST_DOWN, &ctx.grid, &mut self.b32, b);

        let theta = self.theta;
        let delta = self.delta;
        let sigma = self.sigma;
        let mut rho_old = 1.0 / sigma;
        let mut rho_cur = 1.0 / (2.0 * sigma - rho_old);

        // Split-phase overlap only makes sense when the mode communicates.
        let overlap = self.overlap && self.mode == ChebyMode::Global;

        // KernelCI1f32: z = b/θ ; y = 2 ρ/δ (2 b − A b / θ). Coefficients
        // round host-f64 → f32 once per sweep.
        let c1 = (4.0 * rho_cur / delta) as f32;
        let ca = (-2.0 * rho_cur / (delta * theta)) as f32;
        let inv_theta = (1.0 / theta) as f32;
        if overlap {
            let pending = ctx.halo.begin_f32(&ctx.dev, &ctx.comm, &self.b32);
            apply_physical_bcs(&ctx.grid, &mut self.b32, &ctx.recorder, false);
            crate::kernels::scale(
                &ctx.dev,
                INFO_SCALE_F32,
                &ctx.grid,
                &mut self.z,
                &self.b32,
                inv_theta,
            );
            ctx.lap.apply_combine_interior(
                &ctx.dev,
                INFO_CI1_F32,
                &self.b32,
                &mut self.y,
                ca,
                &[(&self.b32, c1)],
            );
            ctx.halo
                .finish_f32(&ctx.dev, &ctx.comm, pending, &mut self.b32);
            ctx.lap.apply_combine_shell(
                &ctx.dev,
                INFO_CI1_F32,
                &self.b32,
                &mut self.y,
                ca,
                &[(&self.b32, c1)],
            );
        } else {
            refresh_ghosts_f32(self.mode, ctx, &mut self.b32);
            crate::kernels::scale(
                &ctx.dev,
                INFO_SCALE_F32,
                &ctx.grid,
                &mut self.z,
                &self.b32,
                inv_theta,
            );
            ctx.lap.apply_combine(
                &ctx.dev,
                INFO_CI1_F32,
                &self.b32,
                &mut self.y,
                ca,
                &[(&self.b32, c1)],
            );
        }

        for _i in 2..=self.iterations {
            // host-side ρ recurrence, still in f64
            rho_old = rho_cur;
            rho_cur = 1.0 / (2.0 * sigma - rho_old);
            // KernelCI2f32: w = ρ (2σ y + 2/δ (b − A y) − ρ_old z)
            let ca = (-2.0 * rho_cur / delta) as f32;
            let cy = (2.0 * sigma * rho_cur) as f32;
            let cb = (2.0 * rho_cur / delta) as f32;
            let cz = (-rho_cur * rho_old) as f32;
            if overlap {
                let pending = ctx.halo.begin_f32(&ctx.dev, &ctx.comm, &self.y);
                apply_physical_bcs(&ctx.grid, &mut self.y, &ctx.recorder, false);
                let (y_ref, z_ref, b_ref, w_mut) = (&self.y, &self.z, &self.b32, &mut self.w);
                ctx.lap.apply_combine_interior(
                    &ctx.dev,
                    INFO_CI2_F32,
                    y_ref,
                    w_mut,
                    ca,
                    &[(y_ref, cy), (b_ref, cb), (z_ref, cz)],
                );
                ctx.halo
                    .finish_f32(&ctx.dev, &ctx.comm, pending, &mut self.y);
                let (y_ref, z_ref, b_ref, w_mut) = (&self.y, &self.z, &self.b32, &mut self.w);
                ctx.lap.apply_combine_shell(
                    &ctx.dev,
                    INFO_CI2_F32,
                    y_ref,
                    w_mut,
                    ca,
                    &[(y_ref, cy), (b_ref, cb), (z_ref, cz)],
                );
            } else {
                refresh_ghosts_f32(self.mode, ctx, &mut self.y);
                let (y_ref, z_ref, b_ref, w_mut) = (&self.y, &self.z, &self.b32, &mut self.w);
                ctx.lap.apply_combine(
                    &ctx.dev,
                    INFO_CI2_F32,
                    y_ref,
                    w_mut,
                    ca,
                    &[(y_ref, cy), (b_ref, cb), (z_ref, cz)],
                );
            }
            // pointer rotation: z ← y, y ← w
            self.z.swap(&mut self.y);
            self.y.swap(&mut self.w);
        }
        // Exact widening on exit: every f32 is representable in f64.
        cast_up(&ctx.dev, INFO_CAST_UP, &ctx.grid, x, &self.y);
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cheby::{global_bounds, ChebyshevIteration};
    use accel::{Recorder, Serial};
    use blockgrid::{BcKind, BlockGrid, Decomp, GlobalGrid};
    use comm::SelfComm;

    fn ctx_single(n: usize) -> RankCtx<f64, Serial, SelfComm<f64>> {
        let mut g = GlobalGrid::dirichlet([n, n, n], [0.2; 3], [0.0; 3]);
        g.bc[0] = [BcKind::Dirichlet, BcKind::Neumann];
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid)
    }

    fn rng_values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn parameters_match_f64_iteration() {
        let ctx = ctx_single(4);
        let bounds = SpectralBounds {
            min: 2.0,
            max: 10.0,
        };
        let mixed = MixedChebyshev::new(&ctx, ChebyMode::Global, bounds, 3);
        let wide = ChebyshevIteration::new(&ctx, ChebyMode::Global, bounds, 3);
        assert_eq!(mixed.parameters(), wide.parameters());
        assert_eq!(mixed.iterations(), 3);
        assert_eq!(mixed.mode(), ChebyMode::Global);
    }

    #[test]
    fn mixed_tracks_the_f64_iteration_to_f32_accuracy() {
        // The f32 sweeps implement the same polynomial; the result must
        // match the f64 iteration to within single-precision rounding
        // accumulated over the sweeps, far tighter than the inexactness
        // Bi-CGSTAB already tolerates from the preconditioner.
        let ctx = ctx_single(6);
        let n = ctx.grid.global.unknowns();
        let rhs = rng_values(n, 17);
        let bounds = global_bounds(&ctx);
        let mut b = blockgrid::Field::from_interior(&ctx.dev, &ctx.grid, &rhs);
        let mut x_wide = ctx.field();
        let mut wide = ChebyshevIteration::new(&ctx, ChebyMode::Global, bounds, 24);
        wide.solve(&ctx, &mut b, &mut x_wide);

        let b = blockgrid::Field::from_interior(&ctx.dev, &ctx.grid, &rhs);
        let mut x_mixed = ctx.field();
        let mut mixed = MixedChebyshev::new(&ctx, ChebyMode::Global, bounds, 24);
        mixed.solve(&ctx, &b, &mut x_mixed);

        let wi = x_wide.interior_to_host(&ctx.grid);
        let mi = x_mixed.interior_to_host(&ctx.grid);
        let scale: f64 = wi.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
        for (a, b) in wi.iter().zip(&mi) {
            assert!(
                (a - b).abs() < 1e-4 * scale,
                "mixed diverged from f64: {a} vs {b} (scale {scale})"
            );
        }
    }

    #[test]
    fn overlap_off_is_bitwise_identical() {
        // Like the f64 iteration, the split-phase schedule must not
        // change a single bit of the result.
        let ctx = ctx_single(5);
        let n = ctx.grid.global.unknowns();
        let rhs = rng_values(n, 23);
        let bounds = global_bounds(&ctx);
        let run = |overlap: bool| {
            let b = blockgrid::Field::from_interior(&ctx.dev, &ctx.grid, &rhs);
            let mut x = ctx.field();
            let mut mixed = MixedChebyshev::new(&ctx, ChebyMode::Global, bounds, 12);
            mixed.set_overlap(overlap);
            mixed.solve(&ctx, &b, &mut x);
            x.interior_to_host(&ctx.grid)
        };
        let on = run(true);
        let off = run(false);
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn application_is_linear_in_f32() {
        // Fixed single-precision polynomial => linear to f32 rounding.
        let ctx = ctx_single(4);
        let n = ctx.grid.global.unknowns();
        let u = rng_values(n, 1);
        let two_u: Vec<f64> = u.iter().map(|v| 2.0 * v).collect();
        let apply = |rhs: &[f64]| -> Vec<f64> {
            let b = blockgrid::Field::from_interior(&ctx.dev, &ctx.grid, rhs);
            let mut x = ctx.field();
            let mut mixed =
                MixedChebyshev::new(&ctx, ChebyMode::GlobalNoComm, global_bounds(&ctx), 8);
            mixed.solve(&ctx, &b, &mut x);
            x.interior_to_host(&ctx.grid)
        };
        let mu = apply(&u);
        let m2u = apply(&two_u);
        for i in 0..n {
            // scaling by 2 is exact in binary floating point
            assert_eq!(m2u[i], 2.0 * mu[i], "homogeneity violated at {i}");
        }
    }

    #[test]
    fn nan_poisoned_rhs_ghosts_do_not_leak() {
        // The down-cast reads only the interior and the iteration
        // refreshes its own f32 ghosts, so NaNs planted in the f64 RHS
        // ghost layers must not perturb a single output bit.
        let ctx = ctx_single(5);
        let n = ctx.grid.global.unknowns();
        let rhs = rng_values(n, 41);
        let bounds = global_bounds(&ctx);
        let run = |poison: bool| {
            let mut b = blockgrid::Field::from_interior(&ctx.dev, &ctx.grid, &rhs);
            if poison {
                let mi = ctx.grid.interior_map();
                let mut interior = vec![false; b.as_slice().len()];
                for k in 0..mi.nz {
                    for j in 0..mi.ny {
                        let off = mi.row_offset(j, k);
                        interior[off..off + mi.len]
                            .iter_mut()
                            .for_each(|m| *m = true);
                    }
                }
                for (v, keep) in b.as_mut_slice().iter_mut().zip(&interior) {
                    if !keep {
                        *v = f64::NAN;
                    }
                }
            }
            let mut x = ctx.field();
            let mut mixed = MixedChebyshev::new(&ctx, ChebyMode::Global, bounds, 10);
            mixed.solve(&ctx, &b, &mut x);
            x.interior_to_host(&ctx.grid)
        };
        let clean = run(false);
        let poisoned = run(true);
        for (c, p) in clean.iter().zip(&poisoned) {
            assert!(p.is_finite(), "a sweep read a poisoned ghost: {p}");
            assert_eq!(c.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn repeated_applications_are_identical() {
        // A *fixed* preconditioner: state carried in the rotation
        // buffers between applications must not change the result.
        let ctx = ctx_single(4);
        let n = ctx.grid.global.unknowns();
        let rhs = rng_values(n, 55);
        let bounds = global_bounds(&ctx);
        let mut mixed = MixedChebyshev::new(&ctx, ChebyMode::Global, bounds, 8);
        let mut outs = Vec::new();
        for _ in 0..2 {
            let b = blockgrid::Field::from_interior(&ctx.dev, &ctx.grid, &rhs);
            let mut x = ctx.field();
            mixed.solve(&ctx, &b, &mut x);
            outs.push(x.interior_to_host(&ctx.grid));
        }
        for (a, b) in outs[0].iter().zip(&outs[1]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
