//! The six solver configurations of Table I, as data.

use accel::{Device, Scalar};
use comm::Communicator;

use crate::bicgstab::Scope;
use crate::cheby::{global_bounds, local_bounds, ChebyMode};
use crate::ctx::RankCtx;
use crate::precond::{
    ChebyPrecond, IdentityPrec, InnerBiCgsPrec, MixedChebyPrecond, PrecTraits, Preconditioner,
};

/// One of the six solvers evaluated in the paper (Table I / Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Un-preconditioned Bi-CGSTAB.
    BiCgs,
    /// Flexible Bi-CGSTAB with a global inner Bi-CGSTAB preconditioner.
    FBiCgsGBiCgs,
    /// Flexible Bi-CGSTAB with a Block-Jacobi inner Bi-CGSTAB preconditioner.
    FBiCgsBjBiCgs,
    /// Bi-CGSTAB with a Block-Jacobi Chebyshev preconditioner.
    BiCgsBjCi,
    /// Bi-CGSTAB with a global Chebyshev preconditioner.
    BiCgsGCi,
    /// Bi-CGSTAB with the communication-free global-spectrum Chebyshev
    /// preconditioner — the paper's fastest configuration.
    BiCgsGNoCommCi,
}

/// Tunables of the preconditioner family (paper Sec. IV defaults).
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Inner relative tolerance for `G(BiCGS)` (paper: `1e-2`).
    pub inner_tol_g: f64,
    /// Inner relative tolerance for `BJ(BiCGS)` (paper: `1e-6`).
    pub inner_tol_bj: f64,
    /// Inner iteration cap for both (paper: 500).
    pub inner_max_iters: usize,
    /// Chebyshev sweeps per application (paper: 24, from the `N_s/2`
    /// error-propagation bound).
    pub ci_iterations: usize,
    /// Bergamaschi rescaling: relative shrink of `λ_max` (paper: `1e-4`).
    pub eig_max_shrink: f64,
    /// Bergamaschi rescaling: inflation of `λ_min` (paper: 100 for the
    /// multi-rank runs, 10 for the single-rank 64³ run).
    pub eig_min_factor: f64,
    /// Overlap the preconditioner's halo exchanges with its deep-interior
    /// sweeps (only the communicating `G(CI)` / `G(BiCGS)` flavours have
    /// exchanges to hide). Mirrors `SolveParams::overlap_halo`.
    pub overlap_halo: bool,
    /// Split-phase batched reductions in the *inner* Bi-CGSTAB solves of
    /// the `G(BiCGS)` / `BJ(BiCGS)` preconditioners (the Chebyshev
    /// flavours are reduction-free). Mirrors `SolveParams::overlap_reduce`.
    pub overlap_reduce: bool,
    /// Fused memory-bound kernels in the *inner* Bi-CGSTAB solves of the
    /// `G(BiCGS)` / `BJ(BiCGS)` preconditioners. Mirrors
    /// `SolveParams::fuse_kernels`.
    pub fuse_kernels: bool,
    /// Run the Chebyshev preconditioner's sweeps, state and halo traffic
    /// in `f32` under the `f64` outer recurrence (default off). Only the
    /// `BJ(CI)` / `G(CI)` / `GNoComm(CI)` flavours have an inner
    /// precision to lower; the inner-Bi-CGSTAB preconditioners ignore
    /// the flag.
    pub mixed_precision: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            inner_tol_g: 1e-2,
            inner_tol_bj: 1e-6,
            inner_max_iters: 500,
            ci_iterations: 24,
            eig_max_shrink: 1e-4,
            eig_min_factor: 100.0,
            overlap_halo: true,
            overlap_reduce: true,
            fuse_kernels: true,
            mixed_precision: false,
        }
    }
}

impl SolverKind {
    /// All six configurations, in Table I order.
    pub fn all() -> [SolverKind; 6] {
        [
            Self::BiCgs,
            Self::FBiCgsGBiCgs,
            Self::FBiCgsBjBiCgs,
            Self::BiCgsBjCi,
            Self::BiCgsGCi,
            Self::BiCgsGNoCommCi,
        ]
    }

    /// The paper's label for the configuration.
    pub fn label(&self) -> &'static str {
        match self {
            Self::BiCgs => "BiCGS",
            Self::FBiCgsGBiCgs => "FBiCGS-G(BiCGS)",
            Self::FBiCgsBjBiCgs => "FBiCGS-BJ(BiCGS)",
            Self::BiCgsBjCi => "BiCGS-BJ(CI)",
            Self::BiCgsGCi => "BiCGS-G(CI)",
            Self::BiCgsGNoCommCi => "BiCGS-GNoComm(CI)",
        }
    }

    /// Table I row: the preconditioner characterisation (`None` for the
    /// un-preconditioned solver).
    pub fn prec_traits(&self) -> Option<PrecTraits> {
        match self {
            Self::BiCgs => None,
            Self::FBiCgsGBiCgs => Some(PrecTraits {
                fixed: false,
                comm_free: false,
                reduction_free: false,
            }),
            Self::FBiCgsBjBiCgs => Some(PrecTraits {
                fixed: false,
                comm_free: true,
                reduction_free: false,
            }),
            Self::BiCgsBjCi => Some(PrecTraits {
                fixed: true,
                comm_free: true,
                reduction_free: true,
            }),
            Self::BiCgsGCi => Some(PrecTraits {
                fixed: true,
                comm_free: false,
                reduction_free: true,
            }),
            Self::BiCgsGNoCommCi => Some(PrecTraits {
                fixed: true,
                comm_free: true,
                reduction_free: true,
            }),
        }
    }

    /// Build the configured preconditioner for `ctx`.
    pub fn build_preconditioner<T, D, C>(
        &self,
        ctx: &RankCtx<T, D, C>,
        opts: &SolverOptions,
    ) -> Box<dyn Preconditioner<T, D, C>>
    where
        T: Scalar,
        D: Device,
        C: Communicator<T>,
    {
        match self {
            Self::BiCgs => Box::new(IdentityPrec),
            Self::FBiCgsGBiCgs => {
                let mut p =
                    InnerBiCgsPrec::new(ctx, Scope::Global, opts.inner_tol_g, opts.inner_max_iters);
                p.set_overlap(opts.overlap_halo);
                p.set_overlap_reduce(opts.overlap_reduce);
                p.set_fuse(opts.fuse_kernels);
                Box::new(p)
            }
            Self::FBiCgsBjBiCgs => {
                let mut p =
                    InnerBiCgsPrec::new(ctx, Scope::Local, opts.inner_tol_bj, opts.inner_max_iters);
                p.set_overlap(opts.overlap_halo);
                p.set_overlap_reduce(opts.overlap_reduce);
                p.set_fuse(opts.fuse_kernels);
                Box::new(p)
            }
            Self::BiCgsBjCi => {
                let bounds = local_bounds(ctx).rescaled(opts.eig_max_shrink, opts.eig_min_factor);
                cheby_prec(ctx, ChebyMode::BlockJacobi, bounds, opts)
            }
            Self::BiCgsGCi => {
                let bounds = global_bounds(ctx).rescaled(opts.eig_max_shrink, opts.eig_min_factor);
                cheby_prec(ctx, ChebyMode::Global, bounds, opts)
            }
            Self::BiCgsGNoCommCi => {
                let bounds = global_bounds(ctx).rescaled(opts.eig_max_shrink, opts.eig_min_factor);
                cheby_prec(ctx, ChebyMode::GlobalNoComm, bounds, opts)
            }
        }
    }
}

/// Build a Chebyshev preconditioner in `mode`, picking the element
/// width from [`SolverOptions::mixed_precision`].
fn cheby_prec<T, D, C>(
    ctx: &RankCtx<T, D, C>,
    mode: ChebyMode,
    bounds: stencil::SpectralBounds,
    opts: &SolverOptions,
) -> Box<dyn Preconditioner<T, D, C>>
where
    T: Scalar,
    D: Device,
    C: Communicator<T>,
{
    if opts.mixed_precision {
        let mut p = MixedChebyPrecond::new(ctx, mode, bounds, opts.ci_iterations);
        p.set_overlap(opts.overlap_halo);
        Box::new(p)
    } else {
        let mut p = ChebyPrecond::new(ctx, mode, bounds, opts.ci_iterations);
        p.set_overlap(opts.overlap_halo);
        Box::new(p)
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bicgs" | "plain" => Ok(Self::BiCgs),
            "g-bicgs" | "fbicgs-g(bicgs)" | "gbicgs" => Ok(Self::FBiCgsGBiCgs),
            "bj-bicgs" | "fbicgs-bj(bicgs)" | "bjbicgs" => Ok(Self::FBiCgsBjBiCgs),
            "bj-ci" | "bicgs-bj(ci)" | "bjci" => Ok(Self::BiCgsBjCi),
            "g-ci" | "bicgs-g(ci)" | "gci" => Ok(Self::BiCgsGCi),
            "gnocomm-ci" | "bicgs-gnocomm(ci)" | "gnocommci" | "gnocomm" => {
                Ok(Self::BiCgsGNoCommCi)
            }
            other => Err(format!(
                "unknown solver {other:?}; expected one of bicgs | g-bicgs | bj-bicgs | bj-ci | g-ci | gnocomm-ci"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        // Table I of the paper, row for row.
        assert_eq!(SolverKind::BiCgs.prec_traits(), None);
        let g_bicgs = SolverKind::FBiCgsGBiCgs.prec_traits().unwrap();
        assert!(!g_bicgs.fixed && !g_bicgs.comm_free && !g_bicgs.reduction_free);
        let bj_bicgs = SolverKind::FBiCgsBjBiCgs.prec_traits().unwrap();
        assert!(!bj_bicgs.fixed && bj_bicgs.comm_free && !bj_bicgs.reduction_free);
        let bj_ci = SolverKind::BiCgsBjCi.prec_traits().unwrap();
        assert!(bj_ci.fixed && bj_ci.comm_free && bj_ci.reduction_free);
        let g_ci = SolverKind::BiCgsGCi.prec_traits().unwrap();
        assert!(g_ci.fixed && !g_ci.comm_free && g_ci.reduction_free);
        let gn = SolverKind::BiCgsGNoCommCi.prec_traits().unwrap();
        assert!(gn.fixed && gn.comm_free && gn.reduction_free);
    }

    #[test]
    fn labels_and_parsing_roundtrip() {
        for kind in SolverKind::all() {
            let parsed: SolverKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("petsc".parse::<SolverKind>().is_err());
    }

    #[test]
    fn default_options_match_paper() {
        let o = SolverOptions::default();
        assert_eq!(o.inner_tol_g, 1e-2);
        assert_eq!(o.inner_tol_bj, 1e-6);
        assert_eq!(o.inner_max_iters, 500);
        assert_eq!(o.ci_iterations, 24);
        assert_eq!(o.eig_max_shrink, 1e-4);
        assert_eq!(o.eig_min_factor, 100.0);
        assert!(!o.mixed_precision, "mixed precision is opt-in");
    }

    #[test]
    fn mixed_precision_flag_switches_the_cheby_family() {
        use accel::{Recorder, Serial};
        use blockgrid::{BlockGrid, Decomp, GlobalGrid};
        use comm::SelfComm;
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([8, 8, 8], [0.1; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        let ctx: RankCtx<f64, _, _> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        // eig_min_factor 10: the paper's single-rank setting — the
        // multi-rank 100 would collapse this tiny grid's spectrum.
        let opts = SolverOptions {
            mixed_precision: true,
            eig_min_factor: 10.0,
            ..Default::default()
        };
        let f64_opts = SolverOptions {
            eig_min_factor: 10.0,
            ..Default::default()
        };
        for (kind, name) in [
            (SolverKind::BiCgsBjCi, "BJ(CI/f32)"),
            (SolverKind::BiCgsGCi, "G(CI/f32)"),
            (SolverKind::BiCgsGNoCommCi, "GNoComm(CI/f32)"),
        ] {
            let p = kind.build_preconditioner(&ctx, &opts);
            assert_eq!(p.name(), name);
            assert_eq!(
                Some(p.traits()),
                kind.prec_traits(),
                "Table I row unchanged"
            );
            let q = kind.build_preconditioner(&ctx, &f64_opts);
            assert!(!q.name().contains("f32"), "default stays f64: {}", q.name());
        }
        // the flag is inert for the non-Chebyshev configurations
        let p = SolverKind::BiCgs.build_preconditioner(&ctx, &opts);
        assert_eq!(p.name(), "Identity");
    }
}
