//! # krylov — preconditioned Bi-CGSTAB with the paper's preconditioner family
//!
//! The core contribution of the reproduced paper: a matrix-free,
//! distributed, performance-portable Bi-CGSTAB solver (Alg. 3) with the
//! Chebyshev iteration (Alg. 4) and inner-Bi-CGSTAB preconditioners in
//! global, Block-Jacobi, and communication-free flavours (Table I).
//!
//! The solver is SPMD: every rank runs [`bicgstab_solve`] on its own
//! [`RankCtx`] (device + communicator + subdomain), and all stopping
//! decisions are taken on allreduced scalars so every rank returns the
//! identical [`SolveOutcome`].
//!
//! ```no_run
//! use accel::{Recorder, Serial};
//! use blockgrid::{BlockGrid, Decomp, Field, GlobalGrid};
//! use comm::SelfComm;
//! use krylov::{bicgstab_solve, RankCtx, Scope, SolveParams, SolverKind, SolverOptions, Workspace};
//!
//! let grid = BlockGrid::new(
//!     GlobalGrid::dirichlet([32, 32, 32], [0.1; 3], [0.0; 3]),
//!     Decomp::single(),
//!     0,
//! );
//! let ctx: RankCtx<f64, _, _> =
//!     RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
//! let b = ctx.field(); // fill with your RHS
//! let mut x = ctx.field();
//! let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
//! let mut prec = SolverKind::BiCgsGNoCommCi.build_preconditioner(&ctx, &SolverOptions::default());
//! let outcome = bicgstab_solve(
//!     &ctx, Scope::Global, &b, &mut x, &mut *prec, &mut ws, &SolveParams::default(),
//! );
//! println!("{} iterations", outcome.iterations);
//! ```

#![warn(missing_docs)]

mod bicgstab;
mod cancel;
mod cheby;
mod config;
mod ctx;
pub mod kernels;
mod mixed;
mod precond;
mod richardson;
mod schwarz;

pub use bicgstab::{
    bicgstab_solve, bicgstab_solve_batch, Breakdown, Scope, SolveOutcome, SolveParams,
};
pub use cancel::CancelToken;
pub use cheby::{global_bounds, local_bounds, ChebyMode, ChebyOutcome, ChebyshevIteration};
pub use config::{SolverKind, SolverOptions};
pub use ctx::{BatchWorkspace, RankCtx, Workspace};
pub use mixed::MixedChebyshev;
pub use precond::{
    ChebyPrecond, IdentityPrec, InnerBiCgsPrec, MixedChebyPrecond, PrecTraits, Preconditioner,
};
pub use richardson::RichardsonPrec;
pub use schwarz::RasPrec;
