//! Preconditioned Bi-CGSTAB exactly as implemented in the paper (Alg. 3).
//!
//! One outer iteration is the device kernels, two preconditioner
//! applications and two halo exchanges of Alg. 3, but both the reduction
//! schedule and the kernel grouping are restructured. With
//! [`SolveParams::overlap_reduce`] on (the default) each iteration ships
//! exactly **two** batched reduction messages posted split-phase
//! ([`Communicator::iall_reduce`]), and with
//! [`SolveParams::fuse_kernels`] on (also the default) the memory-bound
//! vector work collapses from eleven full-grid sweeps to **five**:
//!
//! ```text
//! Preconditioner  MPI1+BCs  KernelBiCGS1 (w = A p̂ ⊕ σ = r̃ᵀw)
//!   M1: iall_reduce [σ, ‖r‖²_prev]  ∥  KernelBiCGS4 (x ← (x+α p̂)+ω r̂)  host α
//! KernelBiCGS2F (r −= αw ⊕ σ₃)   Preconditioner
//! MPI3+BCs  KernelBiCGS3F (t = A r̂ ⊕ σ₁,σ₂,σ₄)
//!   M2: reduce [σ₁,σ₂,σ₃,σ₄]                                          host ω, ρ, β
//! KernelBiCGS56 (r −= ωt ⊕ ‖r‖² ⊕ p ← r + β(p − ωw))
//! ```
//!
//! Unfused (`fuse_kernels: false`) the schedule is the historical one —
//! separate dot sweeps, the x-update split into its 4a/4b halves hidden
//! under M2 and M1 respectively, and a separate KernelBiCGS5/6 pair.
//! Fusion regroups *which loop* computes each value, never the order of
//! the float operations inside a row or the reduction tree that merges
//! row partials, so fused and unfused runs are bitwise-identical under a
//! deterministic [`comm::ReduceOrder`]. Fused overlap defers the whole
//! merged x-update into the next M1 window (there is no 4a half left to
//! hide under M2, which therefore blocks) — the p̂ it needs survives the
//! next preconditioner application in a ping-pong buffer
//! (`Workspace::p_hat_prev`).
//!
//! Two tricks make ≤2 messages possible (both active in the synchronous
//! path too, so the flag only changes message *grouping*, never values):
//!
//! * **ρ by recurrence.** `ρ_{i+1} = r̃ᵀr_{i+1} = r̃ᵀs − ω r̃ᵀt`
//!   (`s = r − αw` is the half-updated residual). The two extra dots
//!   `σ₃ = r̃ᵀs`, `σ₄ = r̃ᵀt` ride in M2 *before* ω exists, breaking the
//!   serial ω → ρ dependency that forced a third reduction. The
//!   convergence norm `‖r‖²` stays a *direct* dot (the analogous
//!   recurrence cancels catastrophically near convergence).
//! * **Lagged convergence check.** `‖r_i‖²` is reduced inside iteration
//!   `i+1`'s M1 and iteration `i`'s stopping decision is taken one
//!   iteration late — at the cost of one speculative preconditioner
//!   application on the final iteration.
//!
//! The same routine serves as the *outer* solver and — in [`Scope::Local`]
//! and [`Scope::Global`] flavours with an identity preconditioner — as the
//! *inner* solver of the `G(BiCGS)` and `BJ(BiCGS)` preconditioners:
//! local scope skips every exchange and reduction and restricts the
//! operator to the subdomain block (Eq. 13).

use accel::Device;
use accel::Scalar;
use accel::REDUCE_OVERLAP_STAGE;
use blockgrid::Field;
use comm::{Communicator, ReduceOp};
use stencil::apply_physical_bcs;

use crate::cancel::CancelToken;
use crate::ctx::{BatchWorkspace, RankCtx, Workspace};
use crate::kernels::{
    axpy2_chained_batch, axpy2_chained_inplace, axpy3_inplace, axpy_dot, axpy_dot_batch,
    axpy_inplace, diff_norm2, dot, dot2, norm2_axpy, norm2_axpy_batch, residual_p_update_fused,
    residual_p_update_fused_batch, residual_update_fused, INFO_BICGS1, INFO_BICGS2, INFO_BICGS2F,
    INFO_BICGS3, INFO_BICGS3F, INFO_BICGS4, INFO_BICGS4A, INFO_BICGS4B, INFO_BICGS5, INFO_BICGS56,
    INFO_BICGS6, INFO_DOT, INFO_FOLD1, INFO_FOLD3, INFO_NORM2AXPY,
};
use crate::precond::Preconditioner;

/// Whether the solve is the global problem or a subdomain-restricted one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Global system: halo exchanges and `MPI_Allreduce` reductions.
    Global,
    /// Block-restricted system `R_s A R_sᵀ x = R_s b`: communication-free,
    /// local reductions only (inner solver of `BJ(BiCGS)`).
    Local,
}

/// Stopping parameters of one Bi-CGSTAB solve.
#[derive(Clone, Debug)]
pub struct SolveParams {
    /// Absolute tolerance on the residual 2-norm (the caller normalises
    /// the RHS, making this a relative tolerance as in the paper).
    pub tol: f64,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Record the residual-norm history (Figs. 2–4).
    pub record_history: bool,
    /// Check convergence mid-loop after the α update (Algorithm 1 lines
    /// 9–11). The paper's implementation (Algorithm 3) omits this check,
    /// saving one reduction per iteration at the cost of potentially one
    /// superfluous half-iteration — this flag is the ablation switch.
    pub early_exit_check: bool,
    /// Every `k` outer iterations recompute the *true* residual
    /// `‖b − A x‖` (one extra exchange + sweep + reduction) and use it
    /// for the convergence decision; `0` disables. Guards against the
    /// recursive-residual drift inherent to BiCGStab's non-monotone
    /// updates (visible in the paper's Fig. 2).
    pub true_residual_every: usize,
    /// On a ρ/ω breakdown, restart with a fresh shadow residual
    /// (`r̃ = r`, recomputed true residual) up to this many times before
    /// reporting the breakdown.
    pub max_restarts: usize,
    /// Overlap halo exchanges with the deep-interior stencil sweep
    /// (split-phase `begin → apply_interior → finish → apply_shell`).
    /// The iterate sequence is bitwise-identical either way (the split
    /// sweep covers each cell once with the same arithmetic, and the
    /// replacement reductions keep the fused kernels' fold order); the
    /// flag exists as the ablation switch for the overlap cost model.
    pub overlap_halo: bool,
    /// Ship the per-iteration scalar reductions as two split-phase
    /// batched messages with compute posted under each (see the module
    /// docs), instead of blocking per stage. Under a deterministic
    /// reduction order the reduced *values* — and hence the iterates,
    /// residual history and stopping decisions — are bitwise-identical
    /// either way: batching only regroups which scalars share a message,
    /// and the element-wise rank-ordered fold is oblivious to grouping.
    /// Effective only in [`Scope::Global`] on >1 rank (elsewhere
    /// reductions are free and lagging would waste a preconditioner
    /// application on the final iteration).
    pub overlap_reduce: bool,
    /// Cooperative cancellation flag, polled collectively once per outer
    /// iteration (see [`CancelToken`]). `None` adds no messages and no
    /// polling. With `overlap_reduce` active the poll adds no messages
    /// either: the flag rides the M1 batch as one extra scalar rather
    /// than a dedicated blocking reduction.
    pub cancel: Option<CancelToken>,
    /// Run the hot loop on the fused kernel schedule: `KernelBiCGS2F`
    /// (axpy + dot), `KernelBiCGS3F` (apply + three dots),
    /// `KernelBiCGS56` (residual + p-update) and the merged deferred
    /// x-update (`KernelBiCGS4`), cutting the full-grid sweeps per
    /// iteration from 11 to 5 (264 → 200 B/elem of model traffic).
    /// Under a deterministic reduction order the iterate sequence,
    /// residual history and stopping decisions are bitwise identical to
    /// the unfused schedule — every fused sweep keeps the grouping and
    /// fold order of the kernels it replaces. With `early_exit_check`
    /// the α-step falls back to the unfused sweeps (the mid-loop exit
    /// must observe `‖r‖` before σ₃ is worth computing).
    pub fuse_kernels: bool,
}

impl Default for SolveParams {
    fn default() -> Self {
        Self {
            tol: 1e-10,
            max_iters: 10_000,
            record_history: true,
            early_exit_check: false,
            true_residual_every: 0,
            max_restarts: 0,
            overlap_halo: true,
            overlap_reduce: true,
            cancel: None,
            fuse_kernels: true,
        }
    }
}

/// Why a solve stopped before converging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Breakdown {
    /// `r̃ᵀ A p̂` vanished (α undefined).
    PSumZero,
    /// `ρ` vanished (β undefined).
    RhoZero,
    /// `ω` vanished with a non-converged residual (stagnation).
    OmegaZero,
    /// A non-finite value appeared (overflow / NaN).
    NonFinite,
}

/// Outcome of one solve; identical on every rank in [`Scope::Global`].
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// `true` if the residual tolerance was met.
    pub converged: bool,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Total preconditioner sweeps across all applications.
    pub prec_iterations: u64,
    /// Residual 2-norm per outer iteration, starting with `‖r_0‖`.
    pub residual_history: Vec<f64>,
    /// Final residual 2-norm.
    pub final_residual: f64,
    /// Breakdown cause, if any.
    pub breakdown: Option<Breakdown>,
    /// Number of shadow-residual restarts taken (see
    /// [`SolveParams::max_restarts`]).
    pub restarts: usize,
    /// `(iteration, ‖b − A x‖)` samples when
    /// [`SolveParams::true_residual_every`] is active.
    pub true_residuals: Vec<(usize, f64)>,
    /// `true` when the solve stopped because its [`CancelToken`] fired
    /// (the iterate is valid up to the last completed iteration).
    pub cancelled: bool,
}

impl SolveOutcome {
    /// Mean preconditioner sweeps per outer iteration (Table II column).
    pub fn prec_per_outer(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.prec_iterations as f64 / self.iterations as f64
        }
    }
}

/// Refresh ghost layers for an operator application in `scope`.
fn refresh_ghosts<T: Scalar, D: Device, C: Communicator<T>>(
    ctx: &RankCtx<T, D, C>,
    scope: Scope,
    stage: &'static str,
    f: &mut Field<T>,
) {
    match scope {
        Scope::Global => {
            ctx.recorder
                .stage(stage, || ctx.halo.exchange(&ctx.dev, &ctx.comm, f));
            apply_physical_bcs(&ctx.grid, f, &ctx.recorder, false);
        }
        Scope::Local => {
            apply_physical_bcs(&ctx.grid, f, &ctx.recorder, true);
        }
    }
}

/// `w = A u` with ghosts refreshed in `scope`.
///
/// When `overlap` is set (Global scope only) the halo exchange is
/// split-phase and hidden behind the ghost-independent work:
/// `begin → KernelNeumannBCs → apply_interior → finish → apply_shell`.
/// The boundary-condition kernel and the deep-interior sweep touch no
/// interface ghost, so they run while the messages are in flight; the
/// shell sweep completes the cover afterwards. Each interior cell is
/// written exactly once with the same arithmetic as the monolithic
/// sweep, so `w` is bitwise-identical to the synchronous path.
fn refresh_and_apply<T: Scalar, D: Device, C: Communicator<T>>(
    ctx: &RankCtx<T, D, C>,
    scope: Scope,
    stage: &'static str,
    overlap: bool,
    info: accel::KernelInfo,
    u: &mut Field<T>,
    w: &mut Field<T>,
) {
    if overlap && scope == Scope::Global {
        let pending = ctx.halo.begin(&ctx.dev, &ctx.comm, u);
        apply_physical_bcs(&ctx.grid, u, &ctx.recorder, false);
        ctx.lap.apply_interior(&ctx.dev, info, u, w);
        ctx.halo.finish(&ctx.dev, &ctx.comm, pending, u);
        ctx.lap.apply_shell(&ctx.dev, info, u, w);
    } else {
        refresh_ghosts(ctx, scope, stage, u);
        ctx.lap.apply(&ctx.dev, info, u, w);
    }
}

/// Sum `vals` across ranks in [`Scope::Global`]; local identity otherwise.
///
/// Routed through [`Communicator::reduce_batch`] so the blocking call
/// sites share the same pack/fold path as the split-phase batches of the
/// reduction-overlap schedule.
fn global_sum<T: Scalar, D: Device, C: Communicator<T>>(
    ctx: &RankCtx<T, D, C>,
    scope: Scope,
    stage: &'static str,
    vals: &mut [T],
) {
    if scope == Scope::Global {
        ctx.recorder
            .stage(stage, || ctx.comm.reduce_batch(&mut [vals], ReduceOp::Sum));
    }
}

/// Solve `A x = b` with preconditioned Bi-CGSTAB (Alg. 3).
///
/// `x` holds the initial guess on entry and the solution on exit.
/// In [`Scope::Global`] the outcome is identical on every rank (all
/// stopping decisions are made on allreduced quantities).
pub fn bicgstab_solve<T, D, C, P>(
    ctx: &RankCtx<T, D, C>,
    scope: Scope,
    b: &Field<T>,
    x: &mut Field<T>,
    prec: &mut P,
    ws: &mut Workspace<T>,
    params: &SolveParams,
) -> SolveOutcome
where
    T: Scalar,
    D: Device,
    C: Communicator<T>,
    P: Preconditioner<T, D, C> + ?Sized,
{
    // LINT: alloc-ok(per-solve convergence bookkeeping, grows amortised
    // outside the audited steady-state window)
    let mut history = Vec::new();
    let mut prec_iterations = 0u64;

    let overlap = params.overlap_halo && scope == Scope::Global;
    let fuse = params.fuse_kernels;

    // r_0 = b − A x_0, ρ_0 = r̃ᵀ r_0 = ‖r_0‖² (r̃ = r_0 elementwise, so
    // the fused norm is the same sequence of products as the dot below)
    refresh_and_apply(
        ctx,
        scope,
        "MPI0",
        overlap,
        stencil::INFO_APPLY,
        x,
        &mut ws.w,
    );
    let mut sums = if fuse {
        // KernelNorm2Axpy: residual formation and its norm in one sweep
        [norm2_axpy(
            &ctx.dev,
            INFO_NORM2AXPY,
            &ctx.grid,
            &mut ws.r,
            b,
            &ws.w,
        )]
    } else {
        ws.r.copy_from(b);
        axpy_inplace(&ctx.dev, INFO_BICGS2, &ctx.grid, &mut ws.r, &ws.w, -T::ONE);
        [T::ZERO]
    };
    // r̃ = r_0, p_0 = r_0
    ws.r0t.copy_from(&ws.r);
    ws.p.copy_from(&ws.r);
    if !fuse {
        sums = [dot(&ctx.dev, INFO_DOT, &ctx.grid, &ws.r0t, &ws.r)];
    }
    global_sum(ctx, scope, "MPI0", &mut sums);
    let mut rho = sums[0];
    let res0 = rho.to_f64().max(0.0).sqrt();
    if params.record_history {
        history.push(res0);
    }
    if res0 < params.tol {
        return SolveOutcome {
            converged: true,
            iterations: 0,
            prec_iterations: 0,
            residual_history: history,
            final_residual: res0,
            breakdown: None,
            restarts: 0,
            // LINT: alloc-ok(empty vec for the zero-iteration early return)
            true_residuals: Vec::new(),
            cancelled: false,
        };
    }

    let mut outcome_breakdown = None;
    let mut converged = false;
    let mut final_residual = res0;
    let mut iterations = 0;
    let mut restarts = 0usize;
    // LINT: alloc-ok(per-solve diagnostic bookkeeping, off the iteration path)
    let mut true_residuals: Vec<(usize, f64)> = Vec::new();
    let mut cancelled = false;

    // Reduction overlap only regroups which scalars share a message and
    // when the stopping decision is *read* — never a reduced value or the
    // arithmetic of an update — so it stays bitwise-transparent. Gated to
    // real multi-rank worlds: on one rank reductions are free and the lag
    // would only spend an extra preconditioner application per solve.
    let overlap_reduce = params.overlap_reduce && scope == Scope::Global && ctx.comm.size() > 1;

    // Lag state of the overlapped schedule: `(i, ‖r_i‖²_local, ω_i, α_i)`
    // — iteration i's not-yet-reduced convergence norm and its deferred
    // x-update, both completed under iteration i+1's M1 window. Unfused,
    // only the ω half (`x += ω r̂`) is deferred (α landed under M2);
    // fused, the whole update `x ← (x + α p̂) + ω r̂` is deferred as one
    // merged KernelBiCGS4 sweep, which is why α rides along.
    let mut lagged: Option<(usize, T, T, T)> = None;

    /// Iteration `$j`'s epilogue once its global `‖r_j‖²` is in hand:
    /// history/final-residual bookkeeping and the stopping ladder
    /// (non-finite → converged → true-residual guard), in the exact
    /// decision order of the synchronous schedule. `break`s out of the
    /// enclosing loop on any stop, falls through otherwise.
    macro_rules! finish_iteration {
        ($j:expr, $rnorm2:expr) => {{
            let j = $j;
            let res = $rnorm2.to_f64().max(0.0).sqrt();
            final_residual = res;
            if params.record_history {
                history.push(res);
            }
            if !res.is_finite() {
                outcome_breakdown = Some(Breakdown::NonFinite);
                iterations = j;
                break;
            }
            if res < params.tol {
                converged = true;
                iterations = j;
                break;
            }
            // Optional drift guard: recompute the true residual
            // ‖b − A x‖ (the recursive residual can decouple from it in
            // long stagnating solves) and let it decide convergence too.
            if params.true_residual_every > 0 && j % params.true_residual_every == 0 {
                refresh_and_apply(
                    ctx,
                    scope,
                    "MPI6",
                    overlap,
                    stencil::INFO_APPLY,
                    x,
                    &mut ws.t,
                );
                let mut s = [diff_norm2(&ctx.dev, INFO_DOT, &ctx.grid, b, &ws.t)];
                global_sum(ctx, scope, "MPI6", &mut s);
                let tres = s[0].to_f64().max(0.0).sqrt();
                true_residuals.push((j, tres));
                if tres < params.tol {
                    final_residual = tres;
                    converged = true;
                    iterations = j;
                    break;
                }
            }
        }};
    }

    for i in 1..=params.max_iters {
        // Cooperative cancellation, decided collectively so every rank
        // breaks on the same iteration: each rank reduces its local view
        // of the flag and any rank's request stops them all. The poll
        // (and its message) exists only when a token is installed — and
        // in the overlapped schedule it costs no message at all: the
        // flag rides the M1 batch as one extra scalar (see below)
        // instead of this dedicated blocking reduction, which would
        // reintroduce the per-iteration synchronous message the
        // split-phase batching removed.
        if !overlap_reduce {
            if let Some(token) = &params.cancel {
                let mut flag = [if token.is_cancelled() {
                    T::ONE
                } else {
                    T::ZERO
                }];
                global_sum(ctx, scope, "MPIC", &mut flag);
                if flag[0] != T::ZERO {
                    cancelled = true;
                    iterations = i - 1;
                    break;
                }
            }
        }
        iterations = i;

        /// On a curable breakdown: restart the Krylov process from the
        /// current iterate with a fresh shadow residual (`r̃ = r`), or
        /// give up when the restart budget is spent.
        macro_rules! breakdown_or_restart {
            ($kind:expr) => {{
                let kind = $kind;
                if restarts < params.max_restarts && kind != Breakdown::NonFinite {
                    restarts += 1;
                    refresh_and_apply(
                        ctx,
                        scope,
                        "MPI0",
                        overlap,
                        stencil::INFO_APPLY,
                        x,
                        &mut ws.w,
                    );
                    let mut s = if fuse {
                        [norm2_axpy(
                            &ctx.dev,
                            INFO_NORM2AXPY,
                            &ctx.grid,
                            &mut ws.r,
                            b,
                            &ws.w,
                        )]
                    } else {
                        ws.r.copy_from(b);
                        axpy_inplace(&ctx.dev, INFO_BICGS2, &ctx.grid, &mut ws.r, &ws.w, -T::ONE);
                        [T::ZERO]
                    };
                    ws.r0t.copy_from(&ws.r);
                    ws.p.copy_from(&ws.r);
                    if !fuse {
                        s = [dot(&ctx.dev, INFO_DOT, &ctx.grid, &ws.r0t, &ws.r)];
                    }
                    global_sum(ctx, scope, "MPI0", &mut s);
                    rho = s[0];
                    let res = rho.to_f64().max(0.0).sqrt();
                    final_residual = res;
                    if res < params.tol {
                        converged = true;
                        break;
                    }
                    continue;
                } else {
                    outcome_breakdown = Some(kind);
                    break;
                }
            }};
        }

        // Solve M p̂ = p
        prec_iterations += ctx.recorder.stage("Preconditioner", || {
            prec.apply(ctx, &mut ws.p, &mut ws.p_hat)
        }) as u64;
        // MPI1 + KernelNeumannBCs, then KernelBiCGS1: w = A p̂, p_sum = r̃ᵀ w.
        // Overlapped unfused, the fused kernel splits into interior/shell
        // sweeps plus a separate dot that keeps the fused fold order (same
        // rows, same per-row accumulation, same partial merge → bitwise
        // equal). Overlapped fused, the sweeps *keep* their dot: each
        // piece deposits per-row partials into the slot buffer and a row
        // fold completes the scalar — one full-grid sweep instead of two,
        // still bitwise equal to the monolithic KernelBiCGS1.
        let psum_local = if overlap {
            if fuse {
                let r0s = ws.r0t.as_slice();
                let terms = |c: usize, v: T| [r0s[c] * v];
                let pending = ctx.halo.begin(&ctx.dev, &ctx.comm, &ws.p_hat);
                apply_physical_bcs(&ctx.grid, &mut ws.p_hat, &ctx.recorder, false);
                ctx.lap.apply_interior_dot(
                    &ctx.dev,
                    INFO_BICGS1,
                    &ws.p_hat,
                    &mut ws.w,
                    &mut ws.slots,
                    &terms,
                );
                ctx.halo.finish(&ctx.dev, &ctx.comm, pending, &mut ws.p_hat);
                let fold = ctx.lap.apply_shell_dot(
                    &ctx.dev,
                    INFO_BICGS1,
                    &ws.p_hat,
                    &mut ws.w,
                    &mut ws.slots,
                    &terms,
                );
                let [s] = fold.fold(&ctx.dev, INFO_FOLD1, &ws.slots);
                s
            } else {
                refresh_and_apply(
                    ctx,
                    scope,
                    "MPI1",
                    true,
                    stencil::INFO_APPLY,
                    &mut ws.p_hat,
                    &mut ws.w,
                );
                dot(&ctx.dev, INFO_DOT, &ctx.grid, &ws.r0t, &ws.w)
            }
        } else {
            refresh_ghosts(ctx, scope, "MPI1", &mut ws.p_hat);
            ctx.lap
                .apply_fused_dot(&ctx.dev, INFO_BICGS1, &ws.p_hat, &mut ws.w, &ws.r0t)
        };
        // M1: reduce σ = r̃ᵀw — batched with the previous iteration's
        // lagged ‖r‖², and posted split-phase so the deferred ω half of
        // the previous x-update computes while the message is in flight.
        let psum = if overlap_reduce {
            ctx.recorder.begin(REDUCE_OVERLAP_STAGE);
            // The cancel poll piggybacks on M1 as one extra scalar, so
            // an installed token adds no message: the flag is sampled
            // here instead of at the loop top, and the decision lands
            // after the deferred ω half below completes the previous
            // iterate — the same iteration boundary the blocking poll
            // stops at.
            let cancel_local = params.cancel.as_ref().map(|token| {
                [if token.is_cancelled() {
                    T::ONE
                } else {
                    T::ZERO
                }]
            });
            let rnorm2_prev = lagged.as_ref().map(|(_, r, _, _)| [*r]);
            let psl = [psum_local];
            // Fixed-capacity group list: the M1 batch is at most
            // [σ, ‖r‖²_prev, cancel] and the hot loop must not allocate.
            let mut groups: [&[T]; 3] = [&psl; 3];
            let mut ng = 1;
            if let Some(r) = &rnorm2_prev {
                groups[ng] = r;
                ng += 1;
            }
            if let Some(c) = &cancel_local {
                groups[ng] = c;
                ng += 1;
            }
            let req = ctx.comm.iall_reduce_batch(&groups[..ng], ReduceOp::Sum);
            if let Some((_, _, omega_prev, alpha_prev)) = lagged {
                if fuse {
                    // Merged KernelBiCGS4 deferred from iteration i−1:
                    // x ← (x + α p̂_prev) + ω r̂, chained exactly as the
                    // split 4a/4b pair so the iterate matches bitwise.
                    axpy2_chained_inplace(
                        &ctx.dev,
                        INFO_BICGS4,
                        &ctx.grid,
                        x,
                        &ws.p_hat_prev,
                        alpha_prev,
                        &ws.r_hat,
                        omega_prev,
                    );
                } else {
                    // KernelBiCGS4b deferred from iteration i−1: x ← x + ω r̂
                    axpy_inplace(&ctx.dev, INFO_BICGS4B, &ctx.grid, x, &ws.r_hat, omega_prev);
                }
            }
            let mut red = [T::ZERO; 3];
            ctx.comm.reduce_finish(req, &mut red[..ng]);
            ctx.recorder.end(REDUCE_OVERLAP_STAGE);
            let had_lag = lagged.is_some();
            if let Some((prev, _, _, _)) = lagged.take() {
                // iteration i−1's stopping decisions, one message late
                finish_iteration!(prev, red[1]);
            }
            if cancel_local.is_some() && red[1 + usize::from(had_lag)] != T::ZERO {
                // Every rank reads the same reduced sum, so all break
                // together; x is complete through iteration i−1 (the
                // deferred ω half just landed above).
                cancelled = true;
                iterations = i - 1;
                break;
            }
            red[0]
        } else {
            let mut sums = [psum_local];
            global_sum(ctx, scope, "MPI2", &mut sums);
            sums[0]
        };
        if !psum.is_finite() {
            outcome_breakdown = Some(Breakdown::NonFinite);
            break;
        }
        if psum == T::ZERO {
            breakdown_or_restart!(Breakdown::PSumZero);
        }
        let alpha = rho / psum;

        // KernelBiCGS2: r ← r − α w, and σ₃ = r̃ᵀ s — the first half of
        // the ρ recurrence ρ_{i+1} = r̃ᵀ r_{i+1} = r̃ᵀ s − ω r̃ᵀ t.
        // Computing ρ this way frees it from its serial dependence on ω,
        // letting it ride in M2 alongside the ω dots instead of forcing a
        // third reduction. Fused, the axpy and σ₃ share one sweep
        // (KernelBiCGS2F); with the mid-loop exit active σ₃ must wait for
        // the exit decision, so the sweeps stay separate.
        let c3_local = if fuse && !params.early_exit_check {
            axpy_dot(
                &ctx.dev,
                INFO_BICGS2F,
                &ctx.grid,
                &mut ws.r,
                &ws.w,
                -alpha,
                &ws.r0t,
            )
        } else {
            axpy_inplace(&ctx.dev, INFO_BICGS2, &ctx.grid, &mut ws.r, &ws.w, -alpha);

            // Optional mid-loop convergence check (Algorithm 1 lines
            // 9–11). One extra reduction per iteration; Algorithm 3
            // trades it away.
            if params.early_exit_check {
                let mut s = [dot(&ctx.dev, INFO_DOT, &ctx.grid, &ws.r, &ws.r)];
                global_sum(ctx, scope, "MPI2b", &mut s);
                let res = s[0].to_f64().max(0.0).sqrt();
                if res < params.tol {
                    // x ← x + α p̂, then exit (Alg. 1 line 10)
                    axpy_inplace(&ctx.dev, INFO_BICGS4A, &ctx.grid, x, &ws.p_hat, alpha);
                    final_residual = res;
                    if params.record_history {
                        history.push(res);
                    }
                    converged = true;
                    break;
                }
            }
            dot(&ctx.dev, INFO_DOT, &ctx.grid, &ws.r0t, &ws.r)
        };

        // Solve M r̂ = r
        prec_iterations += ctx.recorder.stage("Preconditioner", || {
            prec.apply(ctx, &mut ws.r, &mut ws.r_hat)
        }) as u64;
        // MPI3 + BCs, then KernelBiCGS3: t = A r̂, p1 = tᵀ r, p2 = tᵀ t,
        // and σ₄ = r̃ᵀ t (second half of the ρ recurrence). Fused, all
        // three dots ride in the stencil sweep (KernelBiCGS3F); unfused
        // the ω dots share the sweep and σ₄ gets its own.
        let (p1l, p2l, c4_local) = if overlap {
            if fuse {
                let rs = ws.r.as_slice();
                let r0s = ws.r0t.as_slice();
                let terms = |c: usize, v: T| [v * rs[c], v * v, r0s[c] * v];
                let pending = ctx.halo.begin(&ctx.dev, &ctx.comm, &ws.r_hat);
                apply_physical_bcs(&ctx.grid, &mut ws.r_hat, &ctx.recorder, false);
                ctx.lap.apply_interior_dot(
                    &ctx.dev,
                    INFO_BICGS3F,
                    &ws.r_hat,
                    &mut ws.t,
                    &mut ws.slots,
                    &terms,
                );
                ctx.halo.finish(&ctx.dev, &ctx.comm, pending, &mut ws.r_hat);
                let fold = ctx.lap.apply_shell_dot(
                    &ctx.dev,
                    INFO_BICGS3F,
                    &ws.r_hat,
                    &mut ws.t,
                    &mut ws.slots,
                    &terms,
                );
                let [a, b2, c] = fold.fold(&ctx.dev, INFO_FOLD3, &ws.slots);
                (a, b2, c)
            } else {
                refresh_and_apply(
                    ctx,
                    scope,
                    "MPI3",
                    true,
                    stencil::INFO_APPLY,
                    &mut ws.r_hat,
                    &mut ws.t,
                );
                let (a, b2) = dot2(&ctx.dev, INFO_DOT, &ctx.grid, &ws.t, &ws.r);
                (a, b2, dot(&ctx.dev, INFO_DOT, &ctx.grid, &ws.r0t, &ws.t))
            }
        } else if fuse {
            refresh_ghosts(ctx, scope, "MPI3", &mut ws.r_hat);
            ctx.lap
                .apply_fused_dot3(&ctx.dev, INFO_BICGS3F, &ws.r_hat, &mut ws.t, &ws.r, &ws.r0t)
        } else {
            refresh_ghosts(ctx, scope, "MPI3", &mut ws.r_hat);
            let (a, b2) =
                ctx.lap
                    .apply_fused_dot2(&ctx.dev, INFO_BICGS3, &ws.r_hat, &mut ws.t, &ws.r);
            (a, b2, dot(&ctx.dev, INFO_DOT, &ctx.grid, &ws.r0t, &ws.t))
        };

        // M2: all four scalars in one batch. Unfused, the α half of the
        // x-update (KernelBiCGS4a) computes under the split-phase message.
        // Fused, there is nothing left to hide here — both x-halves ride
        // in next iteration's merged KernelBiCGS4 sweep — so M2 blocks.
        let (p1, p2, c3, c4) = if overlap_reduce && !fuse {
            ctx.recorder.begin(REDUCE_OVERLAP_STAGE);
            let req = ctx
                .comm
                .iall_reduce(&[p1l, p2l, c3_local, c4_local], ReduceOp::Sum);
            axpy_inplace(&ctx.dev, INFO_BICGS4A, &ctx.grid, x, &ws.p_hat, alpha);
            let mut red = [T::ZERO; 4];
            ctx.comm.reduce_finish(req, &mut red);
            ctx.recorder.end(REDUCE_OVERLAP_STAGE);
            (red[0], red[1], red[2], red[3])
        } else {
            let mut sums = [p1l, p2l, c3_local, c4_local];
            global_sum(ctx, scope, "MPI4", &mut sums);
            if !fuse {
                axpy_inplace(&ctx.dev, INFO_BICGS4A, &ctx.grid, x, &ws.p_hat, alpha);
            }
            (sums[0], sums[1], sums[2], sums[3])
        };
        if !(p1.is_finite() && p2.is_finite()) {
            outcome_breakdown = Some(Breakdown::NonFinite);
            break;
        }
        // t = 0 can only happen when r is (numerically) zero; ω = 0 keeps
        // the update well-defined and the convergence check decides.
        let omega = if p2 == T::ZERO { T::ZERO } else { p1 / p2 };
        let rho_new = c3 - omega * c4;

        // Fused tail: β only exists when ρ and ω are both non-zero, so
        // breakdown is decided *before* the residual/p sweep and the
        // fused KernelBiCGS56 only runs on the healthy path.
        let breakdown_now = rho_new == T::ZERO || omega == T::ZERO;
        if fuse && !breakdown_now {
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;
            // KernelBiCGS56: r ← r − ω t, ‖r‖² and p ← r + β (p − ω w)
            // in one sweep. The direct ‖r‖² is kept — ρ already came
            // from the recurrence (the direct norm avoids the
            // cancellation a norm recurrence suffers near convergence).
            let rnorm2_local = residual_p_update_fused(
                &ctx.dev,
                INFO_BICGS56,
                &ctx.grid,
                &mut ws.r,
                &mut ws.p,
                &ws.t,
                &ws.w,
                omega,
                beta,
            );
            if overlap_reduce {
                // Both x-halves defer into next iteration's merged
                // KernelBiCGS4 sweep; keep this p̂ alive across the swap.
                lagged = Some((i, rnorm2_local, omega, alpha));
                std::mem::swap(&mut ws.p_hat, &mut ws.p_hat_prev);
            } else {
                // KernelBiCGS4 merged: x ← (x + α p̂) + ω r̂
                axpy2_chained_inplace(
                    &ctx.dev,
                    INFO_BICGS4,
                    &ctx.grid,
                    x,
                    &ws.p_hat,
                    alpha,
                    &ws.r_hat,
                    omega,
                );
                let mut s = [rnorm2_local];
                global_sum(ctx, scope, "MPI5", &mut s);
                finish_iteration!(i, s[0]);
            }
        } else if fuse {
            // Breakdown pre-empts the fusion: β is undefined, so finish
            // the iteration eagerly with the plain residual update and
            // merged x sweep, then take the stopping ladder.
            let (_, rnorm2_local) = residual_update_fused(
                &ctx.dev,
                INFO_BICGS5,
                &ctx.grid,
                &mut ws.r,
                &ws.t,
                omega,
                &ws.r0t,
            );
            axpy2_chained_inplace(
                &ctx.dev,
                INFO_BICGS4,
                &ctx.grid,
                x,
                &ws.p_hat,
                alpha,
                &ws.r_hat,
                omega,
            );
            let mut s = [rnorm2_local];
            global_sum(ctx, scope, "MPI5", &mut s);
            finish_iteration!(i, s[0]);
            if rho_new == T::ZERO {
                breakdown_or_restart!(Breakdown::RhoZero);
            } else {
                // stagnated: ω = 0 with a non-converged residual
                breakdown_or_restart!(Breakdown::OmegaZero);
            }
        } else {
            // KernelBiCGS5: r ← r − ω t, fused dots (r̃·r, r·r). Only the
            // direct ‖r‖² is kept — ρ already came from the recurrence
            // (the direct norm avoids the cancellation a norm recurrence
            // suffers near convergence, which is why it is not recurred
            // as well).
            let (_, rnorm2_local) = residual_update_fused(
                &ctx.dev,
                INFO_BICGS5,
                &ctx.grid,
                &mut ws.r,
                &ws.t,
                omega,
                &ws.r0t,
            );

            if overlap_reduce {
                if breakdown_now {
                    // A breakdown trigger pre-empts the lag: complete the
                    // iteration eagerly (deferred ω half, blocking norm
                    // reduction, stopping ladder) so convergence keeps
                    // its priority over the breakdown and a restart
                    // resumes from the fully-updated iterate.
                    axpy_inplace(&ctx.dev, INFO_BICGS4B, &ctx.grid, x, &ws.r_hat, omega);
                    let mut s = [rnorm2_local];
                    global_sum(ctx, scope, "MPI5", &mut s);
                    finish_iteration!(i, s[0]);
                    if rho_new == T::ZERO {
                        breakdown_or_restart!(Breakdown::RhoZero);
                    } else {
                        // stagnated: ω = 0 with a non-converged residual
                        breakdown_or_restart!(Breakdown::OmegaZero);
                    }
                }
                lagged = Some((i, rnorm2_local, omega, alpha));
            } else {
                // KernelBiCGS4b: x ← x + ω r̂ (split exactly as the
                // overlap schedule splits it, so the iterate sequence is
                // shared)
                axpy_inplace(&ctx.dev, INFO_BICGS4B, &ctx.grid, x, &ws.r_hat, omega);
                let mut s = [rnorm2_local];
                global_sum(ctx, scope, "MPI5", &mut s);
                finish_iteration!(i, s[0]);
                if rho_new == T::ZERO {
                    breakdown_or_restart!(Breakdown::RhoZero);
                }
                if omega == T::ZERO {
                    // stagnated: ω = 0 with a non-converged residual
                    breakdown_or_restart!(Breakdown::OmegaZero);
                }
            }
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;

            // KernelBiCGS6: p ← r + β (p − ω w)
            axpy3_inplace(
                &ctx.dev,
                INFO_BICGS6,
                &ctx.grid,
                &mut ws.p,
                &ws.r,
                &ws.w,
                beta,
                omega,
            );
        }
    }

    // Drain the lag when the iteration budget ran out with the last
    // iteration's bookkeeping still in flight: apply the deferred ω half
    // and take its stopping decisions (the one-shot loop hosts the
    // macro's `break`s).
    if let Some((j, rnorm2_local, omega_prev, alpha_prev)) = lagged.take() {
        if fuse {
            // Merged deferred update: x ← (x + α p̂) + ω r̂ for the last
            // in-flight iteration (its p̂ lives in the swapped buffer).
            axpy2_chained_inplace(
                &ctx.dev,
                INFO_BICGS4,
                &ctx.grid,
                x,
                &ws.p_hat_prev,
                alpha_prev,
                &ws.r_hat,
                omega_prev,
            );
        } else {
            axpy_inplace(&ctx.dev, INFO_BICGS4B, &ctx.grid, x, &ws.r_hat, omega_prev);
        }
        let mut s = [rnorm2_local];
        global_sum(ctx, scope, "MPI5", &mut s);
        #[allow(clippy::never_loop)]
        loop {
            finish_iteration!(j, s[0]);
            break;
        }
    }

    SolveOutcome {
        converged,
        iterations,
        prec_iterations,
        residual_history: history,
        final_residual,
        breakdown: outcome_breakdown,
        restarts,
        true_residuals,
        cancelled: cancelled && !converged,
    }
}

/// Per-lane progress of a batched solve: the scalar recurrence state and
/// the convergence bookkeeping a solo [`bicgstab_solve`] keeps in locals.
struct Lane<T> {
    rho: T,
    alpha: T,
    omega: T,
    beta: T,
    /// `(iteration, ‖r‖²_local, ω, α)` awaiting next M1 (lag schedule).
    lag: Option<(usize, T, T, T)>,
    history: Vec<f64>,
    final_residual: f64,
    iterations: usize,
    prec_iterations: u64,
    converged: bool,
    breakdown: Option<Breakdown>,
    cancelled: bool,
    /// A frozen lane takes no further part in kernels, halo messages or
    /// reduction *values* (its fixed message slots carry zero).
    frozen: bool,
}

/// Iteration `j`'s epilogue for one lane of a batched solve, once its
/// global `‖r_j‖²` is in hand — the batch counterpart of the solo
/// `finish_iteration!` ladder (minus the true-residual guard, which the
/// batch path does not support). Returns `true` when the lane stops.
fn lane_finish<T: Scalar>(lane: &mut Lane<T>, params: &SolveParams, j: usize, rnorm2: T) -> bool {
    let res = rnorm2.to_f64().max(0.0).sqrt();
    lane.final_residual = res;
    if params.record_history {
        lane.history.push(res);
    }
    if !res.is_finite() {
        lane.breakdown = Some(Breakdown::NonFinite);
        lane.iterations = j;
        return true;
    }
    if res < params.tol {
        lane.converged = true;
        lane.iterations = j;
        return true;
    }
    false
}

/// Refresh ghost layers of several lanes for an operator application in
/// `scope`: one batched halo exchange carrying every lane's face planes
/// per message, then the per-lane physical-BC kernels.
fn refresh_ghosts_many<T: Scalar, D: Device, C: Communicator<T>>(
    ctx: &RankCtx<T, D, C>,
    scope: Scope,
    stage: &'static str,
    fields: &mut [&mut Field<T>],
) {
    match scope {
        Scope::Global => {
            ctx.recorder.stage(stage, || {
                ctx.halo.exchange_batch(&ctx.dev, &ctx.comm, fields)
            });
            for f in fields.iter_mut() {
                apply_physical_bcs(&ctx.grid, f, &ctx.recorder, false);
            }
        }
        Scope::Local => {
            for f in fields.iter_mut() {
                apply_physical_bcs(&ctx.grid, f, &ctx.recorder, true);
            }
        }
    }
}

/// Sum each group of `groups` element-wise across ranks in
/// [`Scope::Global`] (one message); local identity otherwise.
fn global_sum_groups<T: Scalar, D: Device, C: Communicator<T>>(
    ctx: &RankCtx<T, D, C>,
    scope: Scope,
    stage: &'static str,
    groups: &mut [&mut [T]],
) {
    if scope == Scope::Global {
        ctx.recorder
            .stage(stage, || ctx.comm.reduce_batch(groups, ReduceOp::Sum));
    }
}

/// Solve `A x_b = b_b` for a batch of right-hand sides with one
/// Bi-CGSTAB instance per lane, amortising sweeps, halo messages and
/// reductions across the batch (the multi-RHS tentpole):
///
/// * every full-grid vector sweep strides all live lanes inside **one**
///   kernel launch (`*_batch` kernels over the accel lane-launch API);
/// * every halo exchange packs all live lanes' face planes into **one**
///   message per face ([`blockgrid::HaloExchange::exchange_batch`]);
/// * every reduction ships all lanes' scalars in the **same** messages —
///   the per-iteration message count stays 2 (M1 split-phase, M2
///   blocking) regardless of batch width, instead of `2 B`.
///
/// Lane `b` runs the exact fused solo schedule: its iterates, residual
/// history and stopping decisions are **bitwise identical** to
/// `bicgstab_solve(ctx, scope, bs[b], xs[b], precs[b], …, params)` under
/// a deterministic [`comm::ReduceOrder`] — batching only regroups which
/// scalars share a message and which sweep covers a row, never the
/// arithmetic order inside a lane. Converged, cancelled or broken-down
/// lanes *freeze*: they drop out of kernels and halo payloads while
/// their fixed message slots carry zeros, so the remaining lanes'
/// schedules (and bit patterns) are unaffected.
///
/// Restrictions relative to the solo path (asserted): fused kernels
/// only, no mid-loop exit, no true-residual guard, and no breakdown
/// restarts — a lane that breaks down freezes and reports its
/// [`Breakdown`] instead of restarting. Cancellation is **per lane**
/// via `cancels` (empty slice: none; otherwise one optional token per
/// lane, present on every rank); [`SolveParams::cancel`] must be
/// `None`. In the overlapped schedule the cancel flags ride the M1
/// batch — `B` extra scalars, zero extra messages.
///
/// Every rank must pass the same batch width and freeze decisions are
/// taken on allreduced values, so the live-lane set — and hence the
/// kernel, halo and message schedule — stays identical on every rank.
#[allow(clippy::too_many_arguments)]
pub fn bicgstab_solve_batch<T, D, C, P>(
    ctx: &RankCtx<T, D, C>,
    scope: Scope,
    bs: &[&Field<T>],
    xs: &mut [&mut Field<T>],
    precs: &mut [&mut P],
    bws: &mut BatchWorkspace<T>,
    params: &SolveParams,
    cancels: &[Option<CancelToken>],
) -> Vec<SolveOutcome>
where
    T: Scalar,
    D: Device,
    C: Communicator<T>,
    P: Preconditioner<T, D, C> + ?Sized,
{
    let nb = bs.len();
    assert_eq!(xs.len(), nb, "one iterate per right-hand side");
    assert_eq!(precs.len(), nb, "one preconditioner per lane");
    assert!(
        bws.lanes.len() >= nb,
        "one workspace lane per right-hand side (a wider cache is fine; the first {nb} are used)"
    );
    assert!(
        cancels.is_empty() || cancels.len() == nb,
        "cancels must be empty or carry one optional token per lane"
    );
    assert!(
        params.cancel.is_none(),
        "batched solves take per-lane tokens via `cancels`, not SolveParams::cancel"
    );
    assert!(
        params.fuse_kernels,
        "the batched path implements the fused kernel schedule only"
    );
    assert!(
        !params.early_exit_check && params.true_residual_every == 0 && params.max_restarts == 0,
        "mid-loop exits, true-residual guards and restarts are unsupported in batched solves"
    );
    if nb == 0 {
        return Vec::new();
    }

    let lag_mode = params.overlap_reduce && scope == Scope::Global && ctx.comm.size() > 1;
    let has_tokens = cancels.iter().any(|c| c.is_some());
    let cancel_flag = |b: usize, lanes: &[Lane<T>]| -> T {
        let live = !lanes[b].frozen;
        match cancels.get(b) {
            Some(Some(tok)) if live && tok.is_cancelled() => T::ONE,
            _ => T::ZERO,
        }
    };

    // ---- Setup (MPI0): r_0 = b − A x_0, ρ_0 = ‖r_0‖² per lane, one
    // batched exchange + one batched fused sweep + one batched reduce.
    {
        let mut fields: Vec<&mut Field<T>> = xs.iter_mut().map(|x| &mut **x).collect();
        refresh_ghosts_many(ctx, scope, "MPI0", &mut fields);
    }
    for (x, ws) in xs.iter().zip(bws.lanes.iter_mut()) {
        ctx.lap.apply(&ctx.dev, stencil::INFO_APPLY, x, &mut ws.w);
    }
    let mut rhos: Vec<T> = vec![T::ZERO; nb];
    {
        let mut accs = vec![[T::ZERO; 1]; nb];
        let mut outs: Vec<&mut [T]> = Vec::with_capacity(nb);
        let mut wsl: Vec<&[T]> = Vec::with_capacity(nb);
        for ws in bws.lanes.iter_mut().take(nb) {
            outs.push(ws.r.as_mut_slice());
            wsl.push(ws.w.as_slice());
        }
        let bsl: Vec<&[T]> = bs.iter().map(|b| b.as_slice()).collect();
        norm2_axpy_batch(
            &ctx.dev,
            INFO_NORM2AXPY,
            &ctx.grid,
            &mut outs,
            &bsl,
            &wsl,
            &mut accs,
        );
        for (rho, a) in rhos.iter_mut().zip(&accs) {
            *rho = a[0];
        }
    }
    for ws in bws.lanes.iter_mut().take(nb) {
        ws.r0t.copy_from(&ws.r);
        ws.p.copy_from(&ws.r);
    }
    global_sum(ctx, scope, "MPI0", &mut rhos);

    let mut lanes: Vec<Lane<T>> = rhos
        .iter()
        .map(|&rho| Lane {
            rho,
            alpha: T::ZERO,
            omega: T::ZERO,
            beta: T::ZERO,
            lag: None,
            history: Vec::new(),
            final_residual: 0.0,
            iterations: 0,
            prec_iterations: 0,
            converged: false,
            breakdown: None,
            cancelled: false,
            frozen: false,
        })
        .collect();
    for lane in lanes.iter_mut() {
        let res0 = lane.rho.to_f64().max(0.0).sqrt();
        lane.final_residual = res0;
        if params.record_history {
            lane.history.push(res0);
        }
        if res0 < params.tol {
            lane.converged = true;
            lane.frozen = true;
        }
    }

    for i in 1..=params.max_iters {
        let mut active: Vec<usize> = (0..nb).filter(|&b| !lanes[b].frozen).collect();
        if active.is_empty() {
            break;
        }

        // Blocking cancel poll of the synchronous schedule (one B-wide
        // group, mirroring the solo MPIC reduction). Overlapped, the
        // flags ride M1 below instead — zero extra messages.
        if !lag_mode && has_tokens {
            let mut flags: Vec<T> = (0..nb).map(|b| cancel_flag(b, &lanes)).collect();
            global_sum(ctx, scope, "MPIC", &mut flags);
            for &b in &active {
                if flags[b] != T::ZERO {
                    lanes[b].cancelled = true;
                    lanes[b].iterations = i - 1;
                    lanes[b].frozen = true;
                }
            }
            active.retain(|&b| !lanes[b].frozen);
            if active.is_empty() {
                break;
            }
        }
        for &b in &active {
            lanes[b].iterations = i;
        }

        // Solve M p̂ = p per lane (preconditioners are per-lane state; the
        // lane order is fixed, so any collectives inside a communicating
        // preconditioner stay rank-uniform).
        for &b in &active {
            let ws = &mut bws.lanes[b];
            lanes[b].prec_iterations += ctx.recorder.stage("Preconditioner", || {
                precs[b].apply(ctx, &mut ws.p, &mut ws.p_hat)
            }) as u64;
        }

        // MPI1 (one batched exchange) + BCs, then batched KernelBiCGS1:
        // w = A p̂, σ = r̃ᵀ w per lane in a single sweep.
        {
            let mut fields: Vec<&mut Field<T>> = bws
                .lanes
                .iter_mut()
                .enumerate()
                .filter(|(b, _)| active.contains(b))
                .map(|(_, ws)| &mut ws.p_hat)
                .collect();
            refresh_ghosts_many(ctx, scope, "MPI1", &mut fields);
        }
        let mut psum_slots: Vec<T> = vec![T::ZERO; nb];
        {
            let mut accs = vec![[T::ZERO; 1]; active.len()];
            let mut wm: Vec<&mut [T]> = Vec::with_capacity(active.len());
            let mut us: Vec<&[T]> = Vec::with_capacity(active.len());
            let mut gs: Vec<&[T]> = Vec::with_capacity(active.len());
            for (b, ws) in bws.lanes.iter_mut().enumerate() {
                if !active.contains(&b) {
                    continue;
                }
                wm.push(ws.w.as_mut_slice());
                us.push(ws.p_hat.as_slice());
                gs.push(ws.r0t.as_slice());
            }
            ctx.lap
                .apply_fused_dot_batch(&ctx.dev, INFO_BICGS1, &us, &mut wm, &gs, &mut accs);
            for (slot, &b) in active.iter().enumerate() {
                psum_slots[b] = accs[slot][0];
            }
        }

        // M1: one chunked split-phase message carrying every lane's σ,
        // the previous iteration's lagged ‖r‖² per lane, and (token
        // installed) the per-lane cancel flags — fixed B-wide slot
        // groups, frozen slots zero. The deferred merged x-updates of
        // all lagged lanes compute under the message in one batched
        // KernelBiCGS4 sweep, exactly as solo defers its single update.
        let any_lag = lanes.iter().any(|l| l.lag.is_some());
        if lag_mode {
            let mut payload: Vec<T> = Vec::with_capacity(3 * nb);
            payload.extend_from_slice(&psum_slots);
            if any_lag {
                payload.extend((0..nb).map(|b| match lanes[b].lag {
                    Some((_, rn, _, _)) => rn,
                    None => T::ZERO,
                }));
            }
            if has_tokens {
                payload.extend((0..nb).map(|b| cancel_flag(b, &lanes)));
            }
            ctx.recorder.begin(REDUCE_OVERLAP_STAGE);
            let req = ctx.comm.iall_reduce_many(&payload, ReduceOp::Sum);
            if any_lag {
                let mut ys: Vec<&mut [T]> = Vec::with_capacity(nb);
                let mut x1s: Vec<&[T]> = Vec::with_capacity(nb);
                let mut x2s: Vec<&[T]> = Vec::with_capacity(nb);
                let mut a1s: Vec<T> = Vec::with_capacity(nb);
                let mut a2s: Vec<T> = Vec::with_capacity(nb);
                for (b, (x, ws)) in xs.iter_mut().zip(bws.lanes.iter()).enumerate() {
                    if let Some((_, _, omega_prev, alpha_prev)) = lanes[b].lag {
                        ys.push(x.as_mut_slice());
                        x1s.push(ws.p_hat_prev.as_slice());
                        x2s.push(ws.r_hat.as_slice());
                        a1s.push(alpha_prev);
                        a2s.push(omega_prev);
                    }
                }
                axpy2_chained_batch(
                    &ctx.dev,
                    INFO_BICGS4,
                    &ctx.grid,
                    &mut ys,
                    &x1s,
                    &a1s,
                    &x2s,
                    &a2s,
                );
            }
            let mut red = vec![T::ZERO; payload.len()];
            ctx.comm.reduce_finish_many(req, &mut red);
            ctx.recorder.end(REDUCE_OVERLAP_STAGE);
            psum_slots.copy_from_slice(&red[..nb]);
            // Iteration i−1's stopping decisions per lagged lane, one
            // message late (the solo lag ladder, lane-wise).
            if any_lag {
                for b in 0..nb {
                    if let Some((prev, _, _, _)) = lanes[b].lag.take() {
                        if lane_finish(&mut lanes[b], params, prev, red[nb + b]) {
                            lanes[b].frozen = true;
                        }
                    }
                }
            }
            if has_tokens {
                let off = if any_lag { 2 * nb } else { nb };
                for &b in &active {
                    if !lanes[b].frozen && red[off + b] != T::ZERO {
                        lanes[b].cancelled = true;
                        lanes[b].iterations = i - 1;
                        lanes[b].frozen = true;
                    }
                }
            }
        } else {
            global_sum(ctx, scope, "MPI2", &mut psum_slots);
        }
        for &b in &active {
            if lanes[b].frozen {
                continue;
            }
            let psum = psum_slots[b];
            if !psum.is_finite() {
                lanes[b].breakdown = Some(Breakdown::NonFinite);
                lanes[b].frozen = true;
                continue;
            }
            if psum == T::ZERO {
                lanes[b].breakdown = Some(Breakdown::PSumZero);
                lanes[b].frozen = true;
                continue;
            }
            lanes[b].alpha = lanes[b].rho / psum;
        }
        active.retain(|&b| !lanes[b].frozen);
        if active.is_empty() {
            continue;
        }

        // Batched KernelBiCGS2F: r ← r − α w with σ₃ = r̃ᵀ s per lane.
        let mut c3_slots: Vec<T> = vec![T::ZERO; nb];
        {
            let mut accs = vec![[T::ZERO; 1]; active.len()];
            let mut ys: Vec<&mut [T]> = Vec::with_capacity(active.len());
            let mut xsl: Vec<&[T]> = Vec::with_capacity(active.len());
            let mut gs: Vec<&[T]> = Vec::with_capacity(active.len());
            let mut coefs: Vec<T> = Vec::with_capacity(active.len());
            for (b, ws) in bws.lanes.iter_mut().enumerate() {
                if !active.contains(&b) {
                    continue;
                }
                ys.push(ws.r.as_mut_slice());
                xsl.push(ws.w.as_slice());
                gs.push(ws.r0t.as_slice());
                coefs.push(-lanes[b].alpha);
            }
            axpy_dot_batch(
                &ctx.dev,
                INFO_BICGS2F,
                &ctx.grid,
                &mut ys,
                &xsl,
                &coefs,
                &gs,
                &mut accs,
            );
            for (slot, &b) in active.iter().enumerate() {
                c3_slots[b] = accs[slot][0];
            }
        }

        // Solve M r̂ = r per lane.
        for &b in &active {
            let ws = &mut bws.lanes[b];
            lanes[b].prec_iterations += ctx.recorder.stage("Preconditioner", || {
                precs[b].apply(ctx, &mut ws.r, &mut ws.r_hat)
            }) as u64;
        }

        // MPI3 (one batched exchange) + BCs, then batched KernelBiCGS3F:
        // t = A r̂ with (p1, p2, σ₄) per lane in a single sweep.
        {
            let mut fields: Vec<&mut Field<T>> = bws
                .lanes
                .iter_mut()
                .enumerate()
                .filter(|(b, _)| active.contains(b))
                .map(|(_, ws)| &mut ws.r_hat)
                .collect();
            refresh_ghosts_many(ctx, scope, "MPI3", &mut fields);
        }
        let mut p1_slots: Vec<T> = vec![T::ZERO; nb];
        let mut p2_slots: Vec<T> = vec![T::ZERO; nb];
        let mut c4_slots: Vec<T> = vec![T::ZERO; nb];
        {
            let mut accs = vec![[T::ZERO; 3]; active.len()];
            let mut tm: Vec<&mut [T]> = Vec::with_capacity(active.len());
            let mut us: Vec<&[T]> = Vec::with_capacity(active.len());
            let mut rsl: Vec<&[T]> = Vec::with_capacity(active.len());
            let mut gs: Vec<&[T]> = Vec::with_capacity(active.len());
            for (b, ws) in bws.lanes.iter_mut().enumerate() {
                if !active.contains(&b) {
                    continue;
                }
                tm.push(ws.t.as_mut_slice());
                us.push(ws.r_hat.as_slice());
                rsl.push(ws.r.as_slice());
                gs.push(ws.r0t.as_slice());
            }
            ctx.lap.apply_fused_dot3_batch(
                &ctx.dev,
                INFO_BICGS3F,
                &us,
                &mut tm,
                &rsl,
                &gs,
                &mut accs,
            );
            for (slot, &b) in active.iter().enumerate() {
                p1_slots[b] = accs[slot][0];
                p2_slots[b] = accs[slot][1];
                c4_slots[b] = accs[slot][2];
            }
        }

        // M2: all four scalar groups of every lane in one blocking
        // message (the solo fused M2 blocks too — nothing is left to
        // hide under it). Fixed B-wide groups, frozen slots zero.
        global_sum_groups(
            ctx,
            scope,
            "MPI4",
            &mut [&mut p1_slots, &mut p2_slots, &mut c3_slots, &mut c4_slots],
        );

        // Per-lane ω / ρ-recurrence / β, and the breakdown partition.
        let mut healthy: Vec<usize> = Vec::with_capacity(active.len());
        let mut broken: Vec<(usize, T, T)> = Vec::new();
        for &b in &active {
            let (p1, p2, c3, c4) = (p1_slots[b], p2_slots[b], c3_slots[b], c4_slots[b]);
            if !(p1.is_finite() && p2.is_finite()) {
                lanes[b].breakdown = Some(Breakdown::NonFinite);
                lanes[b].frozen = true;
                continue;
            }
            let omega = if p2 == T::ZERO { T::ZERO } else { p1 / p2 };
            let rho_new = c3 - omega * c4;
            if rho_new == T::ZERO || omega == T::ZERO {
                broken.push((b, omega, rho_new));
            } else {
                lanes[b].beta = (rho_new / lanes[b].rho) * (lanes[b].alpha / omega);
                lanes[b].omega = omega;
                lanes[b].rho = rho_new;
                healthy.push(b);
            }
        }

        // Breakdown lanes finish eagerly with the solo kernels (constant
        // work — each lane breaks at most once per solve) and share one
        // extra blocking norm reduction; the broken set derives from
        // reduced values, so every rank takes this branch together.
        if !broken.is_empty() {
            let mut rn: Vec<T> = vec![T::ZERO; nb];
            for &(b, omega, _) in &broken {
                let ws = &mut bws.lanes[b];
                let (_, rl) = residual_update_fused(
                    &ctx.dev,
                    INFO_BICGS5,
                    &ctx.grid,
                    &mut ws.r,
                    &ws.t,
                    omega,
                    &ws.r0t,
                );
                axpy2_chained_inplace(
                    &ctx.dev,
                    INFO_BICGS4,
                    &ctx.grid,
                    &mut *xs[b],
                    &ws.p_hat,
                    lanes[b].alpha,
                    &ws.r_hat,
                    omega,
                );
                rn[b] = rl;
            }
            global_sum(ctx, scope, "MPI5", &mut rn);
            for &(b, omega, rho_new) in &broken {
                if !lane_finish(&mut lanes[b], params, i, rn[b]) {
                    lanes[b].breakdown = Some(if rho_new == T::ZERO {
                        Breakdown::RhoZero
                    } else {
                        debug_assert_eq!(omega, T::ZERO);
                        Breakdown::OmegaZero
                    });
                }
                lanes[b].frozen = true;
            }
        }
        if healthy.is_empty() {
            continue;
        }

        // Batched KernelBiCGS56: r ← r − ω t with ‖r‖² and
        // p ← r + β (p − ω w), every healthy lane in one sweep.
        let mut rn_slots: Vec<T> = vec![T::ZERO; nb];
        {
            let mut accs = vec![[T::ZERO; 1]; healthy.len()];
            let mut rm: Vec<&mut [T]> = Vec::with_capacity(healthy.len());
            let mut pm: Vec<&mut [T]> = Vec::with_capacity(healthy.len());
            let mut tsl: Vec<&[T]> = Vec::with_capacity(healthy.len());
            let mut wsl: Vec<&[T]> = Vec::with_capacity(healthy.len());
            let mut omegas: Vec<T> = Vec::with_capacity(healthy.len());
            let mut betas: Vec<T> = Vec::with_capacity(healthy.len());
            for (b, ws) in bws.lanes.iter_mut().enumerate() {
                if !healthy.contains(&b) {
                    continue;
                }
                rm.push(ws.r.as_mut_slice());
                pm.push(ws.p.as_mut_slice());
                tsl.push(ws.t.as_slice());
                wsl.push(ws.w.as_slice());
                omegas.push(lanes[b].omega);
                betas.push(lanes[b].beta);
            }
            residual_p_update_fused_batch(
                &ctx.dev,
                INFO_BICGS56,
                &ctx.grid,
                &mut rm,
                &mut pm,
                &tsl,
                &wsl,
                &omegas,
                &betas,
                &mut accs,
            );
            for (slot, &b) in healthy.iter().enumerate() {
                rn_slots[b] = accs[slot][0];
            }
        }
        if lag_mode {
            // Defer every healthy lane's merged x-update and stopping
            // decision into next iteration's M1 window; keep each lane's
            // p̂ alive across the swap (the solo ping-pong, lane-wise).
            for &b in &healthy {
                lanes[b].lag = Some((i, rn_slots[b], lanes[b].omega, lanes[b].alpha));
                let ws = &mut bws.lanes[b];
                std::mem::swap(&mut ws.p_hat, &mut ws.p_hat_prev);
            }
        } else {
            // Synchronous tail: merged x-updates now (one batched
            // sweep), then one blocking B-wide norm reduction and the
            // stopping ladder per lane.
            {
                let mut ys: Vec<&mut [T]> = Vec::with_capacity(healthy.len());
                let mut x1s: Vec<&[T]> = Vec::with_capacity(healthy.len());
                let mut x2s: Vec<&[T]> = Vec::with_capacity(healthy.len());
                let mut a1s: Vec<T> = Vec::with_capacity(healthy.len());
                let mut a2s: Vec<T> = Vec::with_capacity(healthy.len());
                for (b, (x, ws)) in xs.iter_mut().zip(bws.lanes.iter()).enumerate() {
                    if !healthy.contains(&b) {
                        continue;
                    }
                    ys.push(x.as_mut_slice());
                    x1s.push(ws.p_hat.as_slice());
                    x2s.push(ws.r_hat.as_slice());
                    a1s.push(lanes[b].alpha);
                    a2s.push(lanes[b].omega);
                }
                axpy2_chained_batch(
                    &ctx.dev,
                    INFO_BICGS4,
                    &ctx.grid,
                    &mut ys,
                    &x1s,
                    &a1s,
                    &x2s,
                    &a2s,
                );
            }
            global_sum(ctx, scope, "MPI5", &mut rn_slots);
            for &b in &healthy {
                if lane_finish(&mut lanes[b], params, i, rn_slots[b]) {
                    lanes[b].frozen = true;
                }
            }
        }
    }

    // Drain the lags when the iteration budget ran out with the last
    // iterations' bookkeeping still in flight: one batched deferred
    // x-update sweep, one blocking norm reduction, per-lane ladder.
    let drain: Vec<usize> = (0..nb).filter(|&b| lanes[b].lag.is_some()).collect();
    if !drain.is_empty() {
        {
            let mut ys: Vec<&mut [T]> = Vec::with_capacity(drain.len());
            let mut x1s: Vec<&[T]> = Vec::with_capacity(drain.len());
            let mut x2s: Vec<&[T]> = Vec::with_capacity(drain.len());
            let mut a1s: Vec<T> = Vec::with_capacity(drain.len());
            let mut a2s: Vec<T> = Vec::with_capacity(drain.len());
            for (b, (x, ws)) in xs.iter_mut().zip(bws.lanes.iter()).enumerate() {
                if let Some((_, _, omega_prev, alpha_prev)) = lanes[b].lag {
                    ys.push(x.as_mut_slice());
                    x1s.push(ws.p_hat_prev.as_slice());
                    x2s.push(ws.r_hat.as_slice());
                    a1s.push(alpha_prev);
                    a2s.push(omega_prev);
                }
            }
            axpy2_chained_batch(
                &ctx.dev,
                INFO_BICGS4,
                &ctx.grid,
                &mut ys,
                &x1s,
                &a1s,
                &x2s,
                &a2s,
            );
        }
        let mut rn: Vec<T> = vec![T::ZERO; nb];
        for &b in &drain {
            rn[b] = lanes[b].lag.map(|(_, r, _, _)| r).unwrap_or(T::ZERO);
        }
        global_sum(ctx, scope, "MPI5", &mut rn);
        for &b in &drain {
            let (j, _, _, _) = lanes[b].lag.take().expect("drain lane has a pending lag");
            lane_finish(&mut lanes[b], params, j, rn[b]);
            lanes[b].frozen = true;
        }
    }

    lanes
        .into_iter()
        .map(|l| SolveOutcome {
            converged: l.converged,
            iterations: l.iterations,
            prec_iterations: l.prec_iterations,
            residual_history: l.history,
            final_residual: l.final_residual,
            breakdown: l.breakdown,
            restarts: 0,
            // LINT: alloc-ok(empty vec; the batch path has no true-residual guard)
            true_residuals: Vec::new(),
            cancelled: l.cancelled && !l.converged,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SolverKind, SolverOptions};
    use crate::precond::IdentityPrec;
    use accel::{Recorder, Serial};
    use blockgrid::{BcKind, BlockGrid, Decomp, GlobalGrid};
    use comm::{run_ranks, ReduceOrder, SelfComm, ThreadComm};
    use stencil::matrix::assemble_poisson;

    fn rng_values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn paper_bcs() -> [[BcKind; 2]; 3] {
        [
            [BcKind::Dirichlet, BcKind::Neumann],
            [BcKind::Neumann, BcKind::Dirichlet],
            [BcKind::Neumann, BcKind::Dirichlet],
        ]
    }

    fn ctx_single(n: [usize; 3], bc: [[BcKind; 2]; 3]) -> RankCtx<f64, Serial, SelfComm<f64>> {
        let mut g = GlobalGrid::dirichlet(n, [0.15; 3], [0.0; 3]);
        g.bc = bc;
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid)
    }

    fn solve_single(
        ctx: &RankCtx<f64, Serial, SelfComm<f64>>,
        kind: SolverKind,
        b_host: &[f64],
        tol: f64,
    ) -> (Vec<f64>, SolveOutcome) {
        let b = Field::from_interior(&ctx.dev, &ctx.grid, b_host);
        let mut x = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let opts = SolverOptions {
            eig_min_factor: 10.0,
            ..SolverOptions::default()
        };
        let mut prec = kind.build_preconditioner(ctx, &opts);
        let params = SolveParams {
            tol,
            max_iters: 20_000,
            record_history: true,
            ..Default::default()
        };
        let out = bicgstab_solve(ctx, Scope::Global, &b, &mut x, &mut *prec, &mut ws, &params);
        (x.interior_to_host(&ctx.grid), out)
    }

    #[test]
    fn plain_bicgstab_matches_dense_lu() {
        let ctx = ctx_single([5, 4, 3], paper_bcs());
        let n = ctx.grid.global.unknowns();
        let b = rng_values(n, 5);
        let (x, out) = solve_single(&ctx, SolverKind::BiCgs, &b, 1e-12);
        assert!(out.converged, "did not converge: {out:?}");
        let m = assemble_poisson(&ctx.lap.global_ops(), ctx.grid.global.h);
        let x_ref = m.solve(&b);
        for i in 0..n {
            assert!(
                (x[i] - x_ref[i]).abs() < 1e-8 * x_ref[i].abs().max(1.0),
                "unknown {i}: {} vs {}",
                x[i],
                x_ref[i]
            );
        }
    }

    #[test]
    fn all_six_solvers_converge_to_the_same_solution() {
        let ctx = ctx_single([6, 6, 6], paper_bcs());
        let n = ctx.grid.global.unknowns();
        let b = rng_values(n, 17);
        let m = assemble_poisson(&ctx.lap.global_ops(), ctx.grid.global.h);
        let x_ref = m.solve(&b);
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        for kind in SolverKind::all() {
            let (x, out) = solve_single(&ctx, kind, &b, 1e-10 * bnorm);
            assert!(out.converged, "{kind}: {out:?}");
            let err: f64 = x
                .iter()
                .zip(&x_ref)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(err < 1e-6, "{kind}: solution error {err}");
        }
    }

    #[test]
    fn preconditioning_reduces_outer_iterations() {
        let ctx = ctx_single([8, 8, 8], paper_bcs());
        let n = ctx.grid.global.unknowns();
        let b = rng_values(n, 23);
        let bnorm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-10 * bnorm;
        let (_, plain) = solve_single(&ctx, SolverKind::BiCgs, &b, tol);
        let (_, gnocomm) = solve_single(&ctx, SolverKind::BiCgsGNoCommCi, &b, tol);
        assert!(plain.converged && gnocomm.converged);
        assert!(
            gnocomm.iterations * 2 < plain.iterations,
            "GNoComm(CI) should cut iterations at least in half: {} vs {}",
            gnocomm.iterations,
            plain.iterations
        );
    }

    #[test]
    fn residual_history_is_recorded_and_final_matches() {
        let ctx = ctx_single([5, 5, 5], paper_bcs());
        let n = ctx.grid.global.unknowns();
        let b = rng_values(n, 31);
        let (_, out) = solve_single(&ctx, SolverKind::BiCgsGNoCommCi, &b, 1e-10);
        assert_eq!(out.residual_history.len(), out.iterations + 1);
        assert_eq!(*out.residual_history.last().unwrap(), out.final_residual);
        assert!(out.final_residual < 1e-10);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let ctx = ctx_single([4, 4, 4], paper_bcs());
        let b = vec![0.0; 64];
        let (x, out) = solve_single(&ctx, SolverKind::BiCgs, &b, 1e-12);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nonzero_initial_guess_is_used() {
        let ctx = ctx_single([4, 4, 4], paper_bcs());
        let n = 64;
        let x_true = rng_values(n, 3);
        let m = assemble_poisson(&ctx.lap.global_ops(), ctx.grid.global.h);
        let b_host = m.matvec(&x_true);
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);
        // start from the exact solution: must converge in 0 iterations
        let mut x = Field::from_interior(&ctx.dev, &ctx.grid, &x_true);
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let out = bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut IdentityPrec,
            &mut ws,
            &SolveParams {
                tol: 1e-8,
                max_iters: 100,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn multirank_matches_single_rank_solution() {
        // 8 ranks (2x2x2) with deterministic reductions must produce the
        // same solution as 1 rank (different FP grouping is allowed in the
        // iterates, so compare against the true solution, tightly).
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let b_host = rng_values(n, 41);
        let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-11 * bnorm;

        // single-rank reference
        let ctx1 = ctx_single([8, 8, 8], paper_bcs());
        let (x1, out1) = solve_single(&ctx1, SolverKind::BiCgsGNoCommCi, &b_host, tol);
        assert!(out1.converged);

        // distributed solve
        let decomp = Decomp::new([2, 2, 2]);
        let g2 = g.clone();
        let b_ref = &b_host;
        let results = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
            let grid = BlockGrid::new(g2.clone(), decomp, comm.rank());
            // scatter the global RHS to this rank's interior
            let ln = grid.local_n;
            let mut local = Vec::with_capacity(ln[0] * ln[1] * ln[2]);
            for k in 0..ln[2] {
                for j in 0..ln[1] {
                    for i in 0..ln[0] {
                        let gidx = (grid.offset[0] + i)
                            + 8 * ((grid.offset[1] + j) + 8 * (grid.offset[2] + k));
                        local.push(b_ref[gidx]);
                    }
                }
            }
            let dev = Serial::new(Recorder::disabled());
            let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
            let b = Field::from_interior(&ctx.dev, &ctx.grid, &local);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            let opts = SolverOptions {
                eig_min_factor: 10.0,
                ..SolverOptions::default()
            };
            let mut prec = SolverKind::BiCgsGNoCommCi.build_preconditioner(&ctx, &opts);
            let params = SolveParams {
                tol,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            };
            let out = bicgstab_solve(
                &ctx,
                Scope::Global,
                &b,
                &mut x,
                &mut *prec,
                &mut ws,
                &params,
            );
            (
                out,
                x.interior_to_host(&ctx.grid),
                ctx.grid.offset,
                ctx.grid.local_n,
            )
        });

        // all ranks converged with identical outcome
        let iters: Vec<usize> = results.iter().map(|(o, _, _, _)| o.iterations).collect();
        assert!(
            results.iter().all(|(o, _, _, _)| o.converged),
            "iters {iters:?}"
        );
        assert!(
            iters.iter().all(|&i| i == iters[0]),
            "ranks disagree: {iters:?}"
        );

        // gather and compare to the single-rank solution
        let mut x_gather = vec![0.0; n];
        for (_, local, off, ln) in &results {
            let mut idx = 0;
            for k in 0..ln[2] {
                for j in 0..ln[1] {
                    for i in 0..ln[0] {
                        let gidx = (off[0] + i) + 8 * ((off[1] + j) + 8 * (off[2] + k));
                        x_gather[gidx] = local[idx];
                        idx += 1;
                    }
                }
            }
        }
        for i in 0..n {
            assert!(
                (x_gather[i] - x1[i]).abs() < 1e-7 * x1[i].abs().max(1.0),
                "unknown {i}: {} vs {}",
                x_gather[i],
                x1[i]
            );
        }
    }

    #[test]
    fn overlap_halo_is_bitwise_identical_to_synchronous() {
        // The tentpole determinism guarantee: the split-phase overlapped
        // halo exchange must not perturb a single bit of the iteration —
        // residual histories and solutions agree exactly with the
        // synchronous path, on a communicating configuration (G(CI)
        // preconditioner, so overlap runs inside the preconditioner too).
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let b_host = rng_values(n, 47);
        let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-10 * bnorm;

        let solve = |overlap: bool| {
            let decomp = Decomp::new([2, 2, 2]);
            let g2 = g.clone();
            let b_ref = b_host.clone();
            run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
                let grid = BlockGrid::new(g2.clone(), decomp, comm.rank());
                let ln = grid.local_n;
                let mut local = Vec::with_capacity(ln[0] * ln[1] * ln[2]);
                for k in 0..ln[2] {
                    for j in 0..ln[1] {
                        for i in 0..ln[0] {
                            let gidx = (grid.offset[0] + i)
                                + 8 * ((grid.offset[1] + j) + 8 * (grid.offset[2] + k));
                            local.push(b_ref[gidx]);
                        }
                    }
                }
                let dev = Serial::new(Recorder::disabled());
                let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
                let b = Field::from_interior(&ctx.dev, &ctx.grid, &local);
                let mut x = ctx.field();
                let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
                let opts = SolverOptions {
                    eig_min_factor: 10.0,
                    overlap_halo: overlap,
                    ..SolverOptions::default()
                };
                let mut prec = SolverKind::BiCgsGCi.build_preconditioner(&ctx, &opts);
                let params = SolveParams {
                    tol,
                    max_iters: 20_000,
                    record_history: true,
                    overlap_halo: overlap,
                    ..Default::default()
                };
                let out = bicgstab_solve(
                    &ctx,
                    Scope::Global,
                    &b,
                    &mut x,
                    &mut *prec,
                    &mut ws,
                    &params,
                );
                (out, x.interior_to_host(&ctx.grid))
            })
        };

        let sync = solve(false);
        let over = solve(true);
        for (rank, ((os, xs), (oo, xo))) in sync.iter().zip(&over).enumerate() {
            assert!(
                os.converged && oo.converged,
                "rank {rank}: {os:?} vs {oo:?}"
            );
            assert_eq!(os.iterations, oo.iterations, "rank {rank}");
            let hs: Vec<u64> = os.residual_history.iter().map(|v| v.to_bits()).collect();
            let ho: Vec<u64> = oo.residual_history.iter().map(|v| v.to_bits()).collect();
            assert_eq!(hs, ho, "rank {rank}: residual histories diverge");
            let bs: Vec<u64> = xs.iter().map(|v| v.to_bits()).collect();
            let bo: Vec<u64> = xo.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bs, bo, "rank {rank}: solutions diverge");
        }
    }

    #[test]
    fn overlap_reduce_is_bitwise_identical_to_synchronous() {
        // The reduction-overlap determinism guarantee: batching the
        // per-iteration dots into two split-phase messages must not
        // perturb a single bit of the iteration under a rank-ordered
        // fold — histories and solutions agree exactly with the blocking
        // schedule. Exercised both with a reduction-free preconditioner
        // (G(CI)) and with inner solves that reduce themselves
        // (FBiCGS-G(BiCGS)), so the flag is covered inside the
        // preconditioner too.
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let b_host = rng_values(n, 53);
        let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-10 * bnorm;

        for kind in [SolverKind::BiCgsGCi, SolverKind::FBiCgsGBiCgs] {
            let solve = |overlap_reduce: bool| {
                let decomp = Decomp::new([2, 2, 2]);
                let g2 = g.clone();
                let b_ref = b_host.clone();
                run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
                    let grid = BlockGrid::new(g2.clone(), decomp, comm.rank());
                    let ln = grid.local_n;
                    let mut local = Vec::with_capacity(ln[0] * ln[1] * ln[2]);
                    for k in 0..ln[2] {
                        for j in 0..ln[1] {
                            for i in 0..ln[0] {
                                let gidx = (grid.offset[0] + i)
                                    + 8 * ((grid.offset[1] + j) + 8 * (grid.offset[2] + k));
                                local.push(b_ref[gidx]);
                            }
                        }
                    }
                    let dev = Serial::new(Recorder::disabled());
                    let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
                    let b = Field::from_interior(&ctx.dev, &ctx.grid, &local);
                    let mut x = ctx.field();
                    let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
                    let opts = SolverOptions {
                        eig_min_factor: 10.0,
                        overlap_reduce,
                        ..SolverOptions::default()
                    };
                    let mut prec = kind.build_preconditioner(&ctx, &opts);
                    let params = SolveParams {
                        tol,
                        max_iters: 20_000,
                        record_history: true,
                        overlap_reduce,
                        ..Default::default()
                    };
                    let out = bicgstab_solve(
                        &ctx,
                        Scope::Global,
                        &b,
                        &mut x,
                        &mut *prec,
                        &mut ws,
                        &params,
                    );
                    (out, x.interior_to_host(&ctx.grid))
                })
            };

            let sync = solve(false);
            let over = solve(true);
            for (rank, ((os, xs), (oo, xo))) in sync.iter().zip(&over).enumerate() {
                assert!(
                    os.converged && oo.converged,
                    "{kind} rank {rank}: {os:?} vs {oo:?}"
                );
                assert_eq!(os.iterations, oo.iterations, "{kind} rank {rank}");
                let hs: Vec<u64> = os.residual_history.iter().map(|v| v.to_bits()).collect();
                let ho: Vec<u64> = oo.residual_history.iter().map(|v| v.to_bits()).collect();
                assert_eq!(hs, ho, "{kind} rank {rank}: residual histories diverge");
                let bs: Vec<u64> = xs.iter().map(|v| v.to_bits()).collect();
                let bo: Vec<u64> = xo.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bs, bo, "{kind} rank {rank}: solutions diverge");
            }
        }
    }

    #[test]
    fn fused_kernels_are_bitwise_identical_to_unfused() {
        // The fusion determinism guarantee: regrouping the memory-bound
        // work (apply+dot sweeps, the merged x-update, KernelBiCGS56)
        // must not perturb a single bit of the iteration under a
        // rank-ordered fold — histories and solutions agree exactly with
        // the unfused schedule, on the threaded back-end (whose chunked
        // partial folds must also be regroup-invariant), under both the
        // split-phase and the blocking reduction schedules, and with a
        // preconditioner that runs fused inner solves (FBiCGS-G(BiCGS)).
        use accel::Threads;
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let b_host = rng_values(n, 61);
        let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-10 * bnorm;

        for kind in [SolverKind::BiCgsGCi, SolverKind::FBiCgsGBiCgs] {
            for overlap_reduce in [true, false] {
                let solve = |fuse_kernels: bool| {
                    let decomp = Decomp::new([2, 2, 2]);
                    let g2 = g.clone();
                    let b_ref = b_host.clone();
                    run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
                        let grid = BlockGrid::new(g2.clone(), decomp, comm.rank());
                        let ln = grid.local_n;
                        let mut local = Vec::with_capacity(ln[0] * ln[1] * ln[2]);
                        for k in 0..ln[2] {
                            for j in 0..ln[1] {
                                for i in 0..ln[0] {
                                    let gidx = (grid.offset[0] + i)
                                        + 8 * ((grid.offset[1] + j) + 8 * (grid.offset[2] + k));
                                    local.push(b_ref[gidx]);
                                }
                            }
                        }
                        let dev = Threads::new(2, Recorder::disabled());
                        let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
                        let b = Field::from_interior(&ctx.dev, &ctx.grid, &local);
                        let mut x = ctx.field();
                        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
                        let opts = SolverOptions {
                            eig_min_factor: 10.0,
                            overlap_reduce,
                            fuse_kernels,
                            ..SolverOptions::default()
                        };
                        let mut prec = kind.build_preconditioner(&ctx, &opts);
                        let params = SolveParams {
                            tol,
                            max_iters: 20_000,
                            record_history: true,
                            overlap_reduce,
                            fuse_kernels,
                            ..Default::default()
                        };
                        let out = bicgstab_solve(
                            &ctx,
                            Scope::Global,
                            &b,
                            &mut x,
                            &mut *prec,
                            &mut ws,
                            &params,
                        );
                        (out, x.interior_to_host(&ctx.grid))
                    })
                };

                let unfused = solve(false);
                let fused = solve(true);
                for (rank, ((os, xs), (oo, xo))) in unfused.iter().zip(&fused).enumerate() {
                    let tag = format!("{kind} overlap_reduce={overlap_reduce} rank {rank}");
                    assert!(os.converged && oo.converged, "{tag}: {os:?} vs {oo:?}");
                    assert_eq!(os.iterations, oo.iterations, "{tag}");
                    let hs: Vec<u64> = os.residual_history.iter().map(|v| v.to_bits()).collect();
                    let ho: Vec<u64> = oo.residual_history.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(hs, ho, "{tag}: residual histories diverge");
                    let bs: Vec<u64> = xs.iter().map(|v| v.to_bits()).collect();
                    let bo: Vec<u64> = xo.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(bs, bo, "{tag}: solutions diverge");
                }
            }
        }
    }

    #[test]
    fn overlap_reduce_ships_two_messages_per_iteration() {
        // The headline message-count guarantee of the overlapped
        // schedule: one batch at M1, one at M2 — 2 per iteration, plus
        // the ρ₀ init reduction and the final iteration's lagged-check
        // message. The blocking schedule ships 3 per iteration plus init.
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let b_host = rng_values(n, 59);
        let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-8 * bnorm;

        let count = |overlap_reduce: bool| {
            let decomp = Decomp::new([2, 2, 2]);
            let g2 = g.clone();
            let b_ref = b_host.clone();
            run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
                let grid = BlockGrid::new(g2.clone(), decomp, comm.rank());
                let ln = grid.local_n;
                let mut local = Vec::with_capacity(ln[0] * ln[1] * ln[2]);
                for k in 0..ln[2] {
                    for j in 0..ln[1] {
                        for i in 0..ln[0] {
                            let gidx = (grid.offset[0] + i)
                                + 8 * ((grid.offset[1] + j) + 8 * (grid.offset[2] + k));
                            local.push(b_ref[gidx]);
                        }
                    }
                }
                let dev = Serial::new(Recorder::disabled());
                let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
                let b = Field::from_interior(&ctx.dev, &ctx.grid, &local);
                let mut x = ctx.field();
                let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
                let params = SolveParams {
                    tol,
                    max_iters: 20_000,
                    record_history: false,
                    overlap_reduce,
                    ..Default::default()
                };
                let out = bicgstab_solve(
                    &ctx,
                    Scope::Global,
                    &b,
                    &mut x,
                    &mut IdentityPrec,
                    &mut ws,
                    &params,
                );
                (out.converged, out.iterations, ctx.comm.stats().allreduces)
            })
        };

        for (converged, iters, allreduces) in count(true) {
            assert!(converged);
            assert_eq!(
                allreduces,
                2 * iters as u64 + 2,
                "overlapped schedule must ship 2 messages/iteration"
            );
        }
        for (converged, iters, allreduces) in count(false) {
            assert!(converged);
            assert_eq!(
                allreduces,
                3 * iters as u64 + 1,
                "blocking schedule ships 3 messages/iteration"
            );
        }
    }

    #[test]
    fn cancel_poll_adds_no_messages_under_the_overlapped_schedule() {
        // An installed (never-fired) token must ride the M1 batch as one
        // extra scalar instead of shipping its own blocking reduction:
        // allreduce counts stay at the overlapped schedule's 2 per
        // iteration + 2, identical to the token-free solve, and the
        // iteration itself is bitwise untouched.
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let b_host = rng_values(n, 61);
        let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-8 * bnorm;

        let run = |cancel: Option<CancelToken>| {
            let decomp = Decomp::new([2, 2, 2]);
            let g2 = g.clone();
            let b_ref = b_host.clone();
            run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
                let grid = BlockGrid::new(g2.clone(), decomp, comm.rank());
                let ln = grid.local_n;
                let mut local = Vec::with_capacity(ln[0] * ln[1] * ln[2]);
                for k in 0..ln[2] {
                    for j in 0..ln[1] {
                        for i in 0..ln[0] {
                            let gidx = (grid.offset[0] + i)
                                + 8 * ((grid.offset[1] + j) + 8 * (grid.offset[2] + k));
                            local.push(b_ref[gidx]);
                        }
                    }
                }
                let dev = Serial::new(Recorder::disabled());
                let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
                let b = Field::from_interior(&ctx.dev, &ctx.grid, &local);
                let mut x = ctx.field();
                let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
                let params = SolveParams {
                    tol,
                    max_iters: 20_000,
                    record_history: true,
                    cancel: cancel.clone(),
                    ..Default::default()
                };
                let out = bicgstab_solve(
                    &ctx,
                    Scope::Global,
                    &b,
                    &mut x,
                    &mut IdentityPrec,
                    &mut ws,
                    &params,
                );
                (out, ctx.comm.stats().allreduces)
            })
        };

        let plain = run(None);
        let tokened = run(Some(CancelToken::new()));
        for (rank, ((po, pa), (to, ta))) in plain.iter().zip(&tokened).enumerate() {
            assert!(po.converged && to.converged, "rank {rank}");
            assert!(!to.cancelled, "rank {rank}");
            assert_eq!(po.iterations, to.iterations, "rank {rank}");
            assert_eq!(
                pa, ta,
                "rank {rank}: an uncancelled token must not add messages"
            );
            assert_eq!(*ta, 2 * to.iterations as u64 + 2, "rank {rank}");
            let hp: Vec<u64> = po.residual_history.iter().map(|v| v.to_bits()).collect();
            let ht: Vec<u64> = to.residual_history.iter().map(|v| v.to_bits()).collect();
            assert_eq!(hp, ht, "rank {rank}: residual histories diverge");
        }
    }

    #[test]
    fn pre_cancelled_token_stops_every_rank_under_the_overlapped_schedule() {
        // The piggybacked flag is decided collectively: a pre-cancelled
        // token stops all ranks at iteration 0 after exactly two
        // messages (the ρ₀ init reduction and the M1 batch carrying the
        // flag).
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let b_host = rng_values(n, 67);
        let token = CancelToken::new();
        token.cancel();

        let decomp = Decomp::new([2, 2, 2]);
        let b_ref = b_host.clone();
        let results = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
            let grid = BlockGrid::new(g.clone(), decomp, comm.rank());
            let ln = grid.local_n;
            let mut local = Vec::with_capacity(ln[0] * ln[1] * ln[2]);
            for k in 0..ln[2] {
                for j in 0..ln[1] {
                    for i in 0..ln[0] {
                        let gidx = (grid.offset[0] + i)
                            + 8 * ((grid.offset[1] + j) + 8 * (grid.offset[2] + k));
                        local.push(b_ref[gidx]);
                    }
                }
            }
            let dev = Serial::new(Recorder::disabled());
            let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
            let b = Field::from_interior(&ctx.dev, &ctx.grid, &local);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            let params = SolveParams {
                tol: 1e-14,
                max_iters: 20_000,
                record_history: false,
                cancel: Some(token.clone()),
                ..Default::default()
            };
            let out = bicgstab_solve(
                &ctx,
                Scope::Global,
                &b,
                &mut x,
                &mut IdentityPrec,
                &mut ws,
                &params,
            );
            (out, ctx.comm.stats().allreduces)
        });
        for (rank, (out, allreduces)) in results.iter().enumerate() {
            assert!(out.cancelled, "rank {rank}: {out:?}");
            assert!(!out.converged, "rank {rank}");
            assert_eq!(out.iterations, 0, "rank {rank}");
            assert_eq!(*allreduces, 2, "rank {rank}: init + flag-carrying M1");
        }
    }

    #[test]
    fn f32_solver_reaches_single_precision_tolerance() {
        let mut g = GlobalGrid::dirichlet([6, 6, 6], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        let ctx: RankCtx<f32, _, _> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        let b_host: Vec<f32> = rng_values(216, 2).iter().map(|&v| v as f32).collect();
        let bnorm: f64 = b_host
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt();
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);
        let mut x = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let out = bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut IdentityPrec,
            &mut ws,
            &SolveParams {
                tol: 1e-4 * bnorm,
                max_iters: 5_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged, "{out:?}");
    }

    #[test]
    fn local_scope_solves_each_block_independently() {
        // Two ranks, local scope: each solves its restricted block. Verify
        // against per-block dense references.
        let mut g = GlobalGrid::dirichlet([8, 4, 4], [0.2; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let decomp = Decomp::new([2, 1, 1]);
        let g2 = g.clone();
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, move |comm| {
            let rank = comm.rank();
            let grid = BlockGrid::new(g2.clone(), decomp, rank);
            let dev = Serial::new(Recorder::disabled());
            let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
            let nloc = ctx.grid.local_n.iter().product::<usize>();
            let b_host = rng_values(nloc, 100 + rank as u64);
            let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            let out = bicgstab_solve(
                &ctx,
                Scope::Local,
                &b,
                &mut x,
                &mut IdentityPrec,
                &mut ws,
                &SolveParams {
                    tol: 1e-12,
                    max_iters: 5_000,
                    record_history: false,
                    ..Default::default()
                },
            );
            assert!(out.converged);
            let m = assemble_poisson(&ctx.lap.local_ops(), ctx.grid.global.h);
            let x_ref = m.solve(&b_host);
            let got = x.interior_to_host(&ctx.grid);
            for i in 0..nloc {
                assert!(
                    (got[i] - x_ref[i]).abs() < 1e-8 * x_ref[i].abs().max(1.0),
                    "rank {rank} unknown {i}"
                );
            }
        });
    }
}

#[cfg(test)]
mod feature_tests {
    use super::*;
    use crate::config::{SolverKind, SolverOptions};
    use crate::precond::{IdentityPrec, PrecTraits, Preconditioner};
    use accel::{Recorder, Serial};
    use blockgrid::{BcKind, BlockGrid, Decomp, GlobalGrid};
    use comm::SelfComm;

    fn rng_values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn ctx() -> RankCtx<f64, Serial, SelfComm<f64>> {
        let mut g = GlobalGrid::dirichlet([6, 6, 6], [0.15; 3], [0.0; 3]);
        g.bc[0] = [BcKind::Dirichlet, BcKind::Neumann];
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid)
    }

    fn solve_with(params: &SolveParams) -> SolveOutcome {
        let ctx = ctx();
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &rng_values(216, 7));
        let mut x = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut IdentityPrec,
            &mut ws,
            params,
        )
    }

    #[test]
    fn early_exit_check_still_converges() {
        let plain = solve_with(&SolveParams {
            tol: 1e-10,
            ..Default::default()
        });
        let early = solve_with(&SolveParams {
            tol: 1e-10,
            early_exit_check: true,
            ..Default::default()
        });
        assert!(plain.converged && early.converged);
        // the mid-loop check can only save work, never add iterations
        assert!(early.iterations <= plain.iterations);
        assert!(early.final_residual < 1e-10);
    }

    #[test]
    fn true_residual_sampling_matches_recursive_residual() {
        let out = solve_with(&SolveParams {
            tol: 1e-12,
            true_residual_every: 3,
            ..Default::default()
        });
        assert!(out.converged);
        assert!(!out.true_residuals.is_empty(), "samples must be taken");
        for (i, tres) in &out.true_residuals {
            assert_eq!(i % 3, 0);
            // recursive residual history[i] and the true residual track
            // each other well in a healthy solve (same order of magnitude;
            // the last bits drift once the residual approaches round-off)
            let recursive = out.residual_history[*i];
            let ratio = tres / recursive.max(1e-300);
            assert!(
                (0.5..2.0).contains(&ratio),
                "iter {i}: true {tres} vs recursive {recursive}"
            );
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_the_first_iteration() {
        let token = CancelToken::new();
        token.cancel();
        let out = solve_with(&SolveParams {
            tol: 1e-14,
            cancel: Some(token),
            ..Default::default()
        });
        assert!(out.cancelled);
        assert!(!out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn uncancelled_token_changes_nothing_bitwise() {
        // Installing a token that never fires must not perturb the
        // iteration: identical history and iteration count.
        let plain = solve_with(&SolveParams {
            tol: 1e-10,
            ..Default::default()
        });
        let tokened = solve_with(&SolveParams {
            tol: 1e-10,
            cancel: Some(CancelToken::new()),
            ..Default::default()
        });
        assert!(plain.converged && tokened.converged);
        assert!(!tokened.cancelled);
        assert_eq!(plain.iterations, tokened.iterations);
        let a: Vec<u64> = plain.residual_history.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = tokened
            .residual_history
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn clean_solves_take_no_restarts() {
        let out = solve_with(&SolveParams {
            tol: 1e-10,
            max_restarts: 3,
            ..Default::default()
        });
        assert!(out.converged);
        assert_eq!(out.restarts, 0);
    }

    /// A pathological preconditioner that maps everything to zero — it
    /// forces `p̂ = 0`, hence `r̃ᵀ A p̂ = 0`, a PSumZero breakdown every
    /// iteration.
    struct ZeroPrec;
    impl Preconditioner<f64, Serial, SelfComm<f64>> for ZeroPrec {
        fn apply(
            &mut self,
            _ctx: &RankCtx<f64, Serial, SelfComm<f64>>,
            _rhs: &mut Field<f64>,
            out: &mut Field<f64>,
        ) -> usize {
            out.fill_zero();
            0
        }
        fn traits(&self) -> PrecTraits {
            PrecTraits {
                fixed: true,
                comm_free: true,
                reduction_free: true,
            }
        }
        fn name(&self) -> &'static str {
            "Zero"
        }
    }

    #[test]
    fn restart_budget_is_spent_then_breakdown_reported() {
        let ctx = ctx();
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &rng_values(216, 9));
        let mut x = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let out = bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut ZeroPrec,
            &mut ws,
            &SolveParams {
                tol: 1e-10,
                max_iters: 50,
                max_restarts: 2,
                ..Default::default()
            },
        );
        assert!(!out.converged);
        assert_eq!(out.restarts, 2, "both restarts must be attempted");
        assert_eq!(out.breakdown, Some(Breakdown::PSumZero));
    }

    #[test]
    fn early_exit_solution_satisfies_system() {
        // when the early-exit path fires, x must still solve A x = b
        let ctx = ctx();
        let n = 216;
        let b_host = rng_values(n, 21);
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);
        let mut x = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let opts = SolverOptions {
            eig_min_factor: 10.0,
            ..Default::default()
        };
        let mut prec = SolverKind::BiCgsGNoCommCi.build_preconditioner(&ctx, &opts);
        let out = bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x,
            &mut *prec,
            &mut ws,
            &SolveParams {
                tol: 1e-9,
                early_exit_check: true,
                ..Default::default()
            },
        );
        assert!(out.converged);
        let dense = stencil::matrix::assemble_poisson(&ctx.lap.global_ops(), ctx.grid.global.h);
        let got = x.interior_to_host(&ctx.grid);
        let ax = dense.matvec(&got);
        let res: f64 = ax
            .iter()
            .zip(&b_host)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-7, "true residual {res}");
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::ctx::BatchWorkspace;
    use crate::precond::{IdentityPrec, PrecTraits};
    use accel::{GpuSimParams, Recorder, Serial, SimGpu, Threads};
    use blockgrid::{BcKind, BlockGrid, Decomp, GlobalGrid};
    use comm::{run_ranks, ReduceOrder, SelfComm, ThreadComm};
    use proptest::prelude::*;

    fn rng_values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn paper_bcs() -> [[BcKind; 2]; 3] {
        [
            [BcKind::Dirichlet, BcKind::Neumann],
            [BcKind::Neumann, BcKind::Dirichlet],
            [BcKind::Neumann, BcKind::Dirichlet],
        ]
    }

    /// Restrict a global lexicographic field to this rank's interior.
    fn scatter(grid: &BlockGrid, nx: [usize; 3], global: &[f64]) -> Vec<f64> {
        let ln = grid.local_n;
        let mut local = Vec::with_capacity(ln[0] * ln[1] * ln[2]);
        for k in 0..ln[2] {
            for j in 0..ln[1] {
                for i in 0..ln[0] {
                    let gidx = (grid.offset[0] + i)
                        + nx[0] * ((grid.offset[1] + j) + nx[1] * (grid.offset[2] + k));
                    local.push(global[gidx]);
                }
            }
        }
        local
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn assert_lane_matches_solo(
        tag: &str,
        solo: &(SolveOutcome, Vec<f64>),
        bo: &SolveOutcome,
        bx: &[f64],
    ) {
        let (so, sx) = solo;
        assert_eq!(so.converged, bo.converged, "{tag}: converged");
        assert_eq!(so.iterations, bo.iterations, "{tag}: iterations");
        assert_eq!(so.breakdown, bo.breakdown, "{tag}: breakdown");
        assert_eq!(so.prec_iterations, bo.prec_iterations, "{tag}: prec sweeps");
        assert_eq!(
            so.final_residual.to_bits(),
            bo.final_residual.to_bits(),
            "{tag}: final residual diverges"
        );
        assert_eq!(
            bits(&so.residual_history),
            bits(&bo.residual_history),
            "{tag}: residual histories diverge"
        );
        assert_eq!(bits(sx), bits(bx), "{tag}: solutions diverge");
    }

    /// Lane-wise bitwise identity on one rank (the synchronous batch
    /// schedule): every lane of a 3-wide batch reproduces the solo
    /// fused solve bit-for-bit on each back-end's fold order.
    fn lanewise_matches_solo_on<D: Device>(label: &str, dev: D) {
        let mut g = GlobalGrid::dirichlet([6, 5, 4], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        let ctx: RankCtx<f64, _, SelfComm<f64>> = RankCtx::new(dev, SelfComm::default(), grid);
        let n = ctx.grid.global.unknowns();
        let params = SolveParams {
            tol: 1e-10,
            max_iters: 5_000,
            ..Default::default()
        };
        let nb = 3;
        let b_hosts: Vec<Vec<f64>> = (0..nb).map(|l| rng_values(n, 70 + l as u64)).collect();

        let mut solo = Vec::new();
        for bh in &b_hosts {
            let b = Field::from_interior(&ctx.dev, &ctx.grid, bh);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            let out = bicgstab_solve(
                &ctx,
                Scope::Global,
                &b,
                &mut x,
                &mut IdentityPrec,
                &mut ws,
                &params,
            );
            assert!(out.converged, "{label}: solo lane failed: {out:?}");
            solo.push((out, x.interior_to_host(&ctx.grid)));
        }

        let bfields: Vec<Field<f64>> = b_hosts
            .iter()
            .map(|bh| Field::from_interior(&ctx.dev, &ctx.grid, bh))
            .collect();
        let bs: Vec<&Field<f64>> = bfields.iter().collect();
        let mut xfields: Vec<Field<f64>> = (0..nb).map(|_| ctx.field()).collect();
        let mut xs: Vec<&mut Field<f64>> = xfields.iter_mut().collect();
        let mut ps: Vec<IdentityPrec> = (0..nb).map(|_| IdentityPrec).collect();
        let mut precs: Vec<&mut IdentityPrec> = ps.iter_mut().collect();
        let mut bws = BatchWorkspace::new(&ctx.dev, &ctx.grid, nb);
        let outs = bicgstab_solve_batch(
            &ctx,
            Scope::Global,
            &bs,
            &mut xs,
            &mut precs,
            &mut bws,
            &params,
            &[],
        );
        for (l, (s, bo)) in solo.iter().zip(&outs).enumerate() {
            let bx = xfields[l].interior_to_host(&ctx.grid);
            assert_lane_matches_solo(&format!("{label} lane {l}"), s, bo, &bx);
        }
    }

    #[test]
    fn batched_lanes_bitwise_match_solo_on_every_backend() {
        lanewise_matches_solo_on("serial", Serial::new(Recorder::disabled()));
        lanewise_matches_solo_on("threads", Threads::new(3, Recorder::disabled()));
        lanewise_matches_solo_on(
            "simgpu",
            SimGpu::new(GpuSimParams::mi250x(), Recorder::disabled()),
        );
    }

    /// Lane-wise bitwise identity across 8 ranks under the overlapped
    /// (lagged) schedule with a communicating preconditioner: batching
    /// regroups messages and sweeps, never a lane's arithmetic.
    #[test]
    fn batched_lanes_bitwise_match_solo_across_ranks() {
        use crate::config::{SolverKind, SolverOptions};
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let nb = 2;
        let b_hosts: Vec<Vec<f64>> = (0..nb).map(|l| rng_values(n, 80 + l as u64)).collect();
        let bnorm: f64 = b_hosts[0].iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-9 * bnorm;

        let decomp = Decomp::new([2, 2, 2]);
        let results = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
            let grid = BlockGrid::new(g.clone(), decomp, comm.rank());
            let dev = Serial::new(Recorder::disabled());
            let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
            let locals: Vec<Vec<f64>> = b_hosts
                .iter()
                .map(|bh| scatter(&ctx.grid, [8, 8, 8], bh))
                .collect();
            let opts = SolverOptions {
                eig_min_factor: 10.0,
                ..SolverOptions::default()
            };
            let params = SolveParams {
                tol,
                max_iters: 20_000,
                ..Default::default()
            };

            // Solo references, lane by lane (rank-uniform order).
            let mut solo = Vec::new();
            for local in &locals {
                let b = Field::from_interior(&ctx.dev, &ctx.grid, local);
                let mut x = ctx.field();
                let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
                let mut prec = SolverKind::BiCgsGCi.build_preconditioner(&ctx, &opts);
                let out = bicgstab_solve(
                    &ctx,
                    Scope::Global,
                    &b,
                    &mut x,
                    &mut *prec,
                    &mut ws,
                    &params,
                );
                solo.push((out, x.interior_to_host(&ctx.grid)));
            }

            // One batched solve over both lanes.
            let bfields: Vec<Field<f64>> = locals
                .iter()
                .map(|l| Field::from_interior(&ctx.dev, &ctx.grid, l))
                .collect();
            let bs: Vec<&Field<f64>> = bfields.iter().collect();
            let mut xfields: Vec<Field<f64>> = (0..nb).map(|_| ctx.field()).collect();
            let mut xs: Vec<&mut Field<f64>> = xfields.iter_mut().collect();
            let mut boxes: Vec<_> = (0..nb)
                .map(|_| SolverKind::BiCgsGCi.build_preconditioner(&ctx, &opts))
                .collect();
            let mut precs: Vec<_> = boxes.iter_mut().map(|p| &mut **p).collect();
            let mut bws = BatchWorkspace::new(&ctx.dev, &ctx.grid, nb);
            let outs = bicgstab_solve_batch(
                &ctx,
                Scope::Global,
                &bs,
                &mut xs,
                &mut precs,
                &mut bws,
                &params,
                &[],
            );
            let batch: Vec<(SolveOutcome, Vec<f64>)> = outs
                .into_iter()
                .zip(&xfields)
                .map(|(o, x)| (o, x.interior_to_host(&ctx.grid)))
                .collect();
            (solo, batch)
        });

        for (rank, (solo, batch)) in results.iter().enumerate() {
            for (l, (s, (bo, bx))) in solo.iter().zip(batch).enumerate() {
                assert!(s.0.converged, "rank {rank} lane {l}: solo failed");
                assert_lane_matches_solo(&format!("rank {rank} lane {l}"), s, bo, bx);
            }
        }
    }

    /// The headline amortisation guarantee: a 4-wide batch ships the
    /// solo overlapped schedule's message count of its *longest* lane —
    /// 2 per iteration + 2 — instead of four solo solves' worth.
    #[test]
    fn batched_reductions_amortize_across_lanes() {
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let n = g.unknowns();
        let nb = 4;
        let b_hosts: Vec<Vec<f64>> = (0..nb).map(|l| rng_values(n, 90 + l as u64)).collect();
        let bnorm: f64 = b_hosts[0].iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-8 * bnorm;

        let decomp = Decomp::new([2, 2, 2]);
        let results = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
            let grid = BlockGrid::new(g.clone(), decomp, comm.rank());
            let dev = Serial::new(Recorder::disabled());
            let ctx: RankCtx<f64, _, ThreadComm<f64>> = RankCtx::new(dev, comm, grid);
            let locals: Vec<Vec<f64>> = b_hosts
                .iter()
                .map(|bh| scatter(&ctx.grid, [8, 8, 8], bh))
                .collect();
            let params = SolveParams {
                tol,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            };

            // Solo message bill, lane by lane.
            let before_solo = ctx.comm.stats().allreduces;
            let mut solo_iters = Vec::new();
            for local in &locals {
                let b = Field::from_interior(&ctx.dev, &ctx.grid, local);
                let mut x = ctx.field();
                let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
                let out = bicgstab_solve(
                    &ctx,
                    Scope::Global,
                    &b,
                    &mut x,
                    &mut IdentityPrec,
                    &mut ws,
                    &params,
                );
                assert!(out.converged);
                solo_iters.push(out.iterations);
            }
            let solo_msgs = ctx.comm.stats().allreduces - before_solo;

            // Batched message bill.
            let bfields: Vec<Field<f64>> = locals
                .iter()
                .map(|l| Field::from_interior(&ctx.dev, &ctx.grid, l))
                .collect();
            let bs: Vec<&Field<f64>> = bfields.iter().collect();
            let mut xfields: Vec<Field<f64>> = (0..nb).map(|_| ctx.field()).collect();
            let mut xs: Vec<&mut Field<f64>> = xfields.iter_mut().collect();
            let mut ps: Vec<IdentityPrec> = (0..nb).map(|_| IdentityPrec).collect();
            let mut precs: Vec<&mut IdentityPrec> = ps.iter_mut().collect();
            let mut bws = BatchWorkspace::new(&ctx.dev, &ctx.grid, nb);
            let before_batch = ctx.comm.stats().allreduces;
            let outs = bicgstab_solve_batch(
                &ctx,
                Scope::Global,
                &bs,
                &mut xs,
                &mut precs,
                &mut bws,
                &params,
                &[],
            );
            let batch_msgs = ctx.comm.stats().allreduces - before_batch;
            let batch_iters: Vec<usize> = outs.iter().map(|o| o.iterations).collect();
            assert!(outs.iter().all(|o| o.converged), "{outs:?}");
            (solo_iters, solo_msgs, batch_iters, batch_msgs)
        });

        for (rank, (solo_iters, solo_msgs, batch_iters, batch_msgs)) in results.iter().enumerate() {
            assert_eq!(solo_iters, batch_iters, "rank {rank}: lane iterations");
            let longest = *batch_iters.iter().max().unwrap() as u64;
            let solo_bill: u64 = solo_iters.iter().map(|&i| 2 * i as u64 + 2).sum();
            assert_eq!(*solo_msgs, solo_bill, "rank {rank}: solo bill");
            assert_eq!(
                *batch_msgs,
                2 * longest + 2,
                "rank {rank}: the batch must ship its longest lane's solo bill"
            );
            assert!(
                *batch_msgs < solo_bill,
                "rank {rank}: batching must amortize ({batch_msgs} vs {solo_bill})"
            );
        }
    }

    /// A zero RHS converges at setup (iteration 0) and freezes; its
    /// message slots carry zeros and the surviving lane stays bitwise
    /// identical to its solo solve.
    #[test]
    fn converged_lane_freezes_without_touching_others() {
        let mut g = GlobalGrid::dirichlet([6, 5, 4], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        let ctx: RankCtx<f64, _, SelfComm<f64>> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        let n = ctx.grid.global.unknowns();
        let params = SolveParams {
            tol: 1e-10,
            max_iters: 5_000,
            ..Default::default()
        };
        let live_host = rng_values(n, 7);

        let b_live = Field::from_interior(&ctx.dev, &ctx.grid, &live_host);
        let mut x_solo = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let solo_out = bicgstab_solve(
            &ctx,
            Scope::Global,
            &b_live,
            &mut x_solo,
            &mut IdentityPrec,
            &mut ws,
            &params,
        );
        let solo = (solo_out, x_solo.interior_to_host(&ctx.grid));

        let b_zero = ctx.field();
        let bs = [&b_zero, &b_live];
        let mut x0 = ctx.field();
        let mut x1 = ctx.field();
        let mut xs = [&mut x0, &mut x1];
        let mut p0 = IdentityPrec;
        let mut p1 = IdentityPrec;
        let mut precs = [&mut p0, &mut p1];
        let mut bws = BatchWorkspace::new(&ctx.dev, &ctx.grid, 2);
        let outs = bicgstab_solve_batch(
            &ctx,
            Scope::Global,
            &bs,
            &mut xs,
            &mut precs,
            &mut bws,
            &params,
            &[],
        );
        assert!(outs[0].converged, "{:?}", outs[0]);
        assert_eq!(outs[0].iterations, 0);
        assert_eq!(outs[0].residual_history, vec![0.0]);
        assert!(x0.interior_to_host(&ctx.grid).iter().all(|&v| v == 0.0));
        let bx = x1.interior_to_host(&ctx.grid);
        assert_lane_matches_solo("live lane", &solo, &outs[1], &bx);
    }

    /// An identity preconditioner that fires a cancel token after a set
    /// number of applications — a deterministic stand-in for a client
    /// abandoning one lane mid-solve.
    struct CancelAfter {
        token: CancelToken,
        after: usize,
        count: usize,
    }

    impl<T: Scalar, D: Device, C: Communicator<T>> Preconditioner<T, D, C> for CancelAfter {
        fn apply(
            &mut self,
            _ctx: &RankCtx<T, D, C>,
            rhs: &mut Field<T>,
            out: &mut Field<T>,
        ) -> usize {
            self.count += 1;
            if self.count == self.after {
                self.token.cancel();
            }
            out.copy_from(rhs);
            0
        }

        fn traits(&self) -> PrecTraits {
            PrecTraits {
                fixed: true,
                comm_free: true,
                reduction_free: true,
            }
        }

        fn name(&self) -> &'static str {
            "CancelAfter"
        }
    }

    fn cancel_lane_run(
        fire_after: Option<usize>,
        seeds: [u64; 2],
    ) -> (Vec<SolveOutcome>, Vec<Vec<f64>>) {
        let mut g = GlobalGrid::dirichlet([5, 4, 3], [0.15; 3], [0.0; 3]);
        g.bc = paper_bcs();
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        let ctx: RankCtx<f64, _, SelfComm<f64>> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        let n = ctx.grid.global.unknowns();
        let params = SolveParams {
            tol: 1e-11,
            max_iters: 5_000,
            ..Default::default()
        };
        let hosts: Vec<Vec<f64>> = seeds.iter().map(|&s| rng_values(n, s)).collect();
        let bfields: Vec<Field<f64>> = hosts
            .iter()
            .map(|h| Field::from_interior(&ctx.dev, &ctx.grid, h))
            .collect();
        let bs: Vec<&Field<f64>> = bfields.iter().collect();
        let mut xfields: Vec<Field<f64>> = (0..2).map(|_| ctx.field()).collect();
        let mut xs: Vec<&mut Field<f64>> = xfields.iter_mut().collect();
        let token = CancelToken::new();
        let mut p0 = CancelAfter {
            token: token.clone(),
            after: fire_after.unwrap_or(usize::MAX),
            count: 0,
        };
        let mut p1 = CancelAfter {
            token: CancelToken::new(),
            after: usize::MAX,
            count: 0,
        };
        let mut precs = [&mut p0, &mut p1];
        let mut bws = BatchWorkspace::new(&ctx.dev, &ctx.grid, 2);
        let cancels = if fire_after.is_some() {
            vec![Some(token), None]
        } else {
            Vec::new()
        };
        let outs = bicgstab_solve_batch(
            &ctx,
            Scope::Global,
            &bs,
            &mut xs,
            &mut precs,
            &mut bws,
            &params,
            &cancels,
        );
        let sols = xfields
            .iter()
            .map(|x| x.interior_to_host(&ctx.grid))
            .collect();
        (outs, sols)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // Satellite: cancelling one lane mid-solve leaves every other
        // lane's outcome and solution bitwise unchanged, wherever the
        // cancellation lands in the schedule.
        #[test]
        fn cancelled_lane_leaves_other_lanes_bitwise_unchanged(
            fire in 1usize..12,
            seed in 0u64..1000,
        ) {
            let seeds = [seed.wrapping_mul(2).wrapping_add(1), seed.wrapping_mul(2).wrapping_add(2)];
            let (base_outs, base_sols) = cancel_lane_run(None, seeds);
            prop_assert!(base_outs[0].converged && base_outs[1].converged);
            let (outs, sols) = cancel_lane_run(Some(fire), seeds);

            // Lane 0 either got cancelled or converged first — never both.
            if outs[0].cancelled {
                prop_assert!(!outs[0].converged);
                prop_assert!(outs[0].iterations <= base_outs[0].iterations);
            } else {
                prop_assert_eq!(outs[0].iterations, base_outs[0].iterations);
            }

            // Lane 1 is bitwise untouched by its neighbour's fate.
            prop_assert!(outs[1].converged);
            prop_assert_eq!(outs[1].iterations, base_outs[1].iterations);
            prop_assert_eq!(
                bits(&outs[1].residual_history),
                bits(&base_outs[1].residual_history)
            );
            prop_assert_eq!(bits(&sols[1]), bits(&base_sols[1]));
        }
    }
}
