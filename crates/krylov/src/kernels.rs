//! The fused Bi-CGSTAB vector kernels of Algorithm 3.
//!
//! The paper merges the BLAS-1 operations of the textbook algorithm into
//! six fused kernels (`KernelBiCGS1..6`) to improve temporal locality;
//! `KernelBiCGS1` and `KernelBiCGS3` additionally fuse the stencil apply
//! with the local scalar products (those two live on
//! [`stencil::Laplacian`]). This module provides the remaining vector
//! kernels, all operating on subdomain interiors.

use accel::{fold_row_edge_last, row_has_deep_middle, Device, KernelInfo, Scalar};
use blockgrid::{BlockGrid, Field};

/// `KernelBiCGS2`: `r ← r − α w` (one stream in, one in/out, 2 flops).
pub const INFO_BICGS2: KernelInfo = KernelInfo::new("KernelBiCGS2", 24, 2);
/// `KernelBiCGS4`: `x ← x + α p̂ + ω r̂`.
pub const INFO_BICGS4: KernelInfo = KernelInfo::new("KernelBiCGS4", 32, 4);
/// First half of the split x-update, `x ← x + α p̂`. The reduction-overlap
/// schedule posts each half inside a different reduction window, so the
/// fused `KernelBiCGS4` splits into two plain axpys (re-streaming `x`
/// once: 48 B/elem total vs 32 B fused — the traffic price of the hide).
pub const INFO_BICGS4A: KernelInfo = KernelInfo::new("KernelBiCGS4a", 24, 2);
/// Second half of the split x-update, `x ← x + ω r̂` (deferred into the
/// next iteration's first reduction window when overlap is on).
pub const INFO_BICGS4B: KernelInfo = KernelInfo::new("KernelBiCGS4b", 24, 2);
/// `KernelBiCGS5`: `r ← r − ω t` fused with the dots `r̃·r` and `r·r`.
pub const INFO_BICGS5: KernelInfo = KernelInfo::new("KernelBiCGS5", 32, 6);
/// `KernelBiCGS6`: `p ← r + β (p − ω w)`.
pub const INFO_BICGS6: KernelInfo = KernelInfo::new("KernelBiCGS6", 32, 4);
/// `KernelBiCGS1` (stencil + dot, launched via `Laplacian::apply_fused_dot`).
pub const INFO_BICGS1: KernelInfo = KernelInfo::new("KernelBiCGS1", 40, 12);
/// `KernelBiCGS3` (stencil + two dots, via `Laplacian::apply_fused_dot2`).
pub const INFO_BICGS3: KernelInfo = KernelInfo::new("KernelBiCGS3", 48, 14);
/// `KernelCI1`: Chebyshev start step `z = b/θ`, `y = c1 b + ca A b`.
pub const INFO_CI1: KernelInfo = KernelInfo::new("KernelCI1", 40, 12);
/// `KernelCI2`: Chebyshev sweep `w = ca A y + c1 y + c2 b + c3 z`.
pub const INFO_CI2: KernelInfo = KernelInfo::new("KernelCI2", 56, 16);
/// Plain local dot product (initial `ρ_0 = r̃ᵀ r_0` of Alg. 3 line 4).
pub const INFO_DOT: KernelInfo = KernelInfo::new("KernelDot", 16, 2);
/// Scaling kernel (`z = b/θ` half of `KernelCI1`; also RHS normalisation).
pub const INFO_SCALE: KernelInfo = KernelInfo::new("KernelScale", 16, 1);
/// `KernelBiCGS2F`: `KernelBiCGS2` fused with the follow-on dot
/// `r̃ᵀ r` — the updated `r` never round-trips to memory between the
/// axpy and the reduction (8 B/elem deduplicated: one `r` re-read).
pub const INFO_BICGS2F: KernelInfo = KernelInfo::fused("KernelBiCGS2F", INFO_BICGS2, INFO_DOT, 8);
/// `KernelBiCGS3F`: `KernelBiCGS3` fused with the third dot `r̃ᵀ t`,
/// so the second stencil apply produces all three scalars of the ω
/// step in one sweep (16 B/elem deduplicated: `t` re-read + re-write).
pub const INFO_BICGS3F: KernelInfo = KernelInfo::fused("KernelBiCGS3F", INFO_BICGS3, INFO_DOT, 16);
/// `KernelBiCGS56`: `KernelBiCGS5` and `KernelBiCGS6` in one sweep —
/// `r ← r − ω t` with `‖r‖²`, and `p ← r + β (p − ω w)` consuming the
/// fresh residual value in-register. Streams r(rw), p(rw), t(r), w(r):
/// 48 B/elem vs 64 B for the pair (`r̃ᵀr` is free: it equals ρ_new,
/// already reduced).
pub const INFO_BICGS56: KernelInfo = KernelInfo::new("KernelBiCGS56", 48, 8);
/// `KernelNorm2Axpy`: residual formation `r ← b − w` fused with `‖r‖²`
/// (setup/restart path; replaces copy + axpy + dot at 24 B/elem extra).
pub const INFO_NORM2AXPY: KernelInfo = KernelInfo::new("KernelNorm2Axpy", 32, 3);
/// Fold of per-row dot partials deposited by a split fused-dot sweep
/// (`NR = 1`). Named with the `KernelFold` prefix so sweep-count
/// accounting can exclude these row-sized launches from full-grid
/// sweep totals.
pub const INFO_FOLD1: KernelInfo = KernelInfo::new("KernelFold1", 8, 1);
/// Fold of per-row dot partials for a three-way split fused dot
/// (`NR = 3`, `KernelBiCGS3F` split form).
pub const INFO_FOLD3: KernelInfo = KernelInfo::new("KernelFold3", 24, 3);
/// `KernelCI1f32`: the Chebyshev start step in single precision — the
/// same sweep as `KernelCI1` at half the element width (40 B → 20 B).
pub const INFO_CI1_F32: KernelInfo = KernelInfo::new("KernelCI1f32", 20, 12);
/// `KernelCI2f32`: the single-precision Chebyshev sweep (56 B → 28 B).
pub const INFO_CI2_F32: KernelInfo = KernelInfo::new("KernelCI2f32", 28, 16);
/// Single-precision scaling kernel (16 B → 8 B).
pub const INFO_SCALE_F32: KernelInfo = KernelInfo::new("KernelScaleF32", 8, 1);
/// Down-cast `f64 → f32` entry sweep of the mixed-precision
/// preconditioner (8 B read + 4 B write per element, no flops booked).
pub const INFO_CAST_DOWN: KernelInfo = KernelInfo::new("KernelCastDown", 12, 0);
/// Up-cast `f32 → f64` exit sweep (4 B read + 8 B write per element).
pub const INFO_CAST_UP: KernelInfo = KernelInfo::new("KernelCastUp", 12, 0);

/// `y ← y + a x` over the interior.
pub fn axpy_inplace<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    y: &mut Field<T>,
    x: &Field<T>,
    a: T,
) {
    let map = grid.interior_map();
    let xs = x.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, y.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v += a * xs[b + i];
        }
    });
}

/// `y ← y + a1 x1 + a2 x2` over the interior (`KernelBiCGS4` shape).
#[allow(clippy::too_many_arguments)]
pub fn axpy2_inplace<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    y: &mut Field<T>,
    x1: &Field<T>,
    a1: T,
    x2: &Field<T>,
    a2: T,
) {
    let map = grid.interior_map();
    let x1s = x1.as_slice();
    let x2s = x2.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, y.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v += a1 * x1s[b + i] + a2 * x2s[b + i];
        }
    });
}

/// `y ← (y + a1 x1) + a2 x2` over the interior — the two split halves
/// of the x-update re-merged into one sweep (`KernelBiCGS4` traffic)
/// while keeping the *grouping* of the two sequential axpys, so the
/// result is bitwise identical to running `KernelBiCGS4a` then
/// `KernelBiCGS4b`. Contrast [`axpy2_inplace`], which groups as
/// `y + (a1 x1 + a2 x2)` and rounds differently.
#[allow(clippy::too_many_arguments)]
pub fn axpy2_chained_inplace<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    y: &mut Field<T>,
    x1: &Field<T>,
    a1: T,
    x2: &Field<T>,
    a2: T,
) {
    let map = grid.interior_map();
    let x1s = x1.as_slice();
    let x2s = x2.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, y.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            let v1 = *v + a1 * x1s[b + i];
            *v = v1 + a2 * x2s[b + i];
        }
    });
}

/// `y ← y + a x` fused with the dot `g · y` over the updated values —
/// the `KernelBiCGS2F` sweep (`r ← r − α w` producing `r̃ᵀ r` in the
/// same pass). The dot folds edge-last per row, bitwise identical to
/// running [`axpy_inplace`] followed by [`dot`]`(g, y)`.
#[allow(clippy::too_many_arguments)]
pub fn axpy_dot<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    y: &mut Field<T>,
    x: &Field<T>,
    a: T,
    g: &Field<T>,
) -> T {
    let map = grid.interior_map();
    let [nx, ny, nz] = grid.local_n;
    let xs = x.as_slice();
    let gs = g.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    let [s] = dev.launch_rows_reduce(info, map, y.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v += a * xs[b + i];
        }
        let mid = row_has_deep_middle(nx, ny, nz, j, k);
        [fold_row_edge_last(row.len(), mid, |i| gs[b + i] * row[i])]
    });
    s
}

/// `out ← b − w` fused with `‖out‖²` — the `KernelNorm2Axpy` setup
/// sweep forming the initial residual and `ρ_0 = r̃ᵀ r = ‖r‖²` (since
/// `r̃ = r` at setup) in one pass. Bitwise identical to
/// `copy + axpy(-1) + dot(r, r)`: `b + (−1)·w` rounds as `b − w`, and
/// the norm folds edge-last like [`dot`].
pub fn norm2_axpy<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    out: &mut Field<T>,
    b: &Field<T>,
    w: &Field<T>,
) -> T {
    let map = grid.interior_map();
    let [nx, ny, nz] = grid.local_n;
    let bs = b.as_slice();
    let wsl = w.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    let [s] = dev.launch_rows_reduce(info, map, out.as_mut_slice(), |j, k, row| {
        let b0 = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v = bs[b0 + i] - wsl[b0 + i];
        }
        let mid = row_has_deep_middle(nx, ny, nz, j, k);
        [fold_row_edge_last(row.len(), mid, |i| row[i] * row[i])]
    });
    s
}

/// `KernelBiCGS56`: `r ← r − ω t` with `‖r‖²` **and** `p ← r + β (p −
/// ω w)` in one two-output sweep, the fresh residual value consumed
/// in-register. The norm accumulates in plain row order — exactly the
/// order `KernelBiCGS5`'s `r·r` partial uses — and the `p` formula
/// matches [`axpy3_inplace`] element-for-element, so the fused sweep
/// is bitwise identical to `KernelBiCGS5` + `KernelBiCGS6`.
#[allow(clippy::too_many_arguments)]
pub fn residual_p_update_fused<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    r: &mut Field<T>,
    p: &mut Field<T>,
    t: &Field<T>,
    w: &Field<T>,
    omega: T,
    beta: T,
) -> T {
    let map = grid.interior_map();
    let ts = t.as_slice();
    let wsl = w.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    let [s] = dev.launch_rows2_reduce(
        info,
        map,
        r.as_mut_slice(),
        map,
        p.as_mut_slice(),
        |j, k, row_r, row_p| {
            let b = base0 + j * sy + k * sz;
            let mut acc = T::ZERO;
            for i in 0..row_r.len() {
                let rv = row_r[i] - omega * ts[b + i];
                row_r[i] = rv;
                acc += rv * rv;
                row_p[i] = rv + beta * (row_p[i] - omega * wsl[b + i]);
            }
            [acc]
        },
    );
    s
}

/// `KernelBiCGS5`: `r ← r − ω t`, returning the local partial sums
/// `(r̃ · r, r · r)` of the updated residual.
pub fn residual_update_fused<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    r: &mut Field<T>,
    t: &Field<T>,
    omega: T,
    r0t: &Field<T>,
) -> (T, T) {
    let map = grid.interior_map();
    let ts = t.as_slice();
    let r0s = r0t.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    let [p1, p2] = dev.launch_rows_reduce(info, map, r.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        let mut s1 = T::ZERO;
        let mut s2 = T::ZERO;
        for (i, v) in row.iter_mut().enumerate() {
            let rv = *v - omega * ts[b + i];
            *v = rv;
            s1 += r0s[b + i] * rv;
            s2 += rv * rv;
        }
        [s1, s2]
    });
    (p1, p2)
}

/// `KernelBiCGS6`: `p ← r + β (p − ω w)` — a three-stream axpy-style
/// update (read `r`, `w`, read-modify-write `p`) in one sweep.
#[allow(clippy::too_many_arguments)]
pub fn axpy3_inplace<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    p: &mut Field<T>,
    r: &Field<T>,
    w: &Field<T>,
    beta: T,
    omega: T,
) {
    let map = grid.interior_map();
    let rs = r.as_slice();
    let ws = w.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, p.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v = rs[b + i] + beta * (*v - omega * ws[b + i]);
        }
    });
}

/// Batched `KernelNorm2Axpy`: per-lane `out ← b − w` fused with `‖out‖²`,
/// all lanes of a multi-RHS solve in one launch. The device sweeps every
/// lane inside a single grid pass (one kernel-launch event, amortising
/// launch and sync overhead across the batch) while folding each lane's
/// rows with a private accumulator in solo order — lane `s` is bitwise
/// identical to [`norm2_axpy`] over the same fields. Slices are full
/// padded lane arrays; per-lane results land in `accs[s]`.
pub fn norm2_axpy_batch<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    outs: &mut [&mut [T]],
    bs: &[&[T]],
    ws: &[&[T]],
    accs: &mut [[T; 1]],
) {
    assert_eq!(outs.len(), bs.len(), "lane count mismatch");
    assert_eq!(outs.len(), ws.len(), "lane count mismatch");
    let map = grid.interior_map();
    let [nx, ny, nz] = grid.local_n;
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_lanes_reduce(info, map, outs, accs, |s, j, k, row| {
        let b0 = base0 + j * sy + k * sz;
        let (bsl, wsl) = (bs[s], ws[s]);
        for (i, v) in row.iter_mut().enumerate() {
            *v = bsl[b0 + i] - wsl[b0 + i];
        }
        let mid = row_has_deep_middle(nx, ny, nz, j, k);
        [fold_row_edge_last(row.len(), mid, |i| row[i] * row[i])]
    });
}

/// Batched `KernelBiCGS2F`: per-lane `y ← y + a x` fused with the dot
/// `g · y` over the updated values, all lanes in one launch. Lane `s`
/// (coefficient `coefs[s]`) is bitwise identical to [`axpy_dot`] over
/// the same fields.
#[allow(clippy::too_many_arguments)]
pub fn axpy_dot_batch<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    ys: &mut [&mut [T]],
    xs: &[&[T]],
    coefs: &[T],
    gs: &[&[T]],
    accs: &mut [[T; 1]],
) {
    assert_eq!(ys.len(), xs.len(), "lane count mismatch");
    assert_eq!(ys.len(), coefs.len(), "lane count mismatch");
    assert_eq!(ys.len(), gs.len(), "lane count mismatch");
    let map = grid.interior_map();
    let [nx, ny, nz] = grid.local_n;
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_lanes_reduce(info, map, ys, accs, |s, j, k, row| {
        let b = base0 + j * sy + k * sz;
        let (xsl, gsl, a) = (xs[s], gs[s], coefs[s]);
        for (i, v) in row.iter_mut().enumerate() {
            *v += a * xsl[b + i];
        }
        let mid = row_has_deep_middle(nx, ny, nz, j, k);
        [fold_row_edge_last(row.len(), mid, |i| gsl[b + i] * row[i])]
    });
}

/// Batched merged x-update: per-lane `y ← (y + a1 x1) + a2 x2` with the
/// chained grouping of [`axpy2_chained_inplace`], all lanes in one
/// launch (the deferred `KernelBiCGS4` sweeps of a multi-RHS iteration).
/// Lane `s` is bitwise identical to the solo chained kernel.
#[allow(clippy::too_many_arguments)]
pub fn axpy2_chained_batch<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    ys: &mut [&mut [T]],
    x1s: &[&[T]],
    a1s: &[T],
    x2s: &[&[T]],
    a2s: &[T],
) {
    assert_eq!(ys.len(), x1s.len(), "lane count mismatch");
    assert_eq!(ys.len(), a1s.len(), "lane count mismatch");
    assert_eq!(ys.len(), x2s.len(), "lane count mismatch");
    assert_eq!(ys.len(), a2s.len(), "lane count mismatch");
    let map = grid.interior_map();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_lanes(info, map, ys, |s, j, k, row| {
        let b = base0 + j * sy + k * sz;
        let (x1, x2, a1, a2) = (x1s[s], x2s[s], a1s[s], a2s[s]);
        for (i, v) in row.iter_mut().enumerate() {
            let v1 = *v + a1 * x1[b + i];
            *v = v1 + a2 * x2[b + i];
        }
    });
}

/// Batched `KernelBiCGS56`: per-lane `r ← r − ω t` with `‖r‖²` and
/// `p ← r + β (p − ω w)` in one two-output sweep across every lane.
/// Lane `s` (scalars `omegas[s]`, `betas[s]`) is bitwise identical to
/// [`residual_p_update_fused`] over the same fields.
#[allow(clippy::too_many_arguments)]
pub fn residual_p_update_fused_batch<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    rs: &mut [&mut [T]],
    ps: &mut [&mut [T]],
    ts: &[&[T]],
    ws: &[&[T]],
    omegas: &[T],
    betas: &[T],
    accs: &mut [[T; 1]],
) {
    assert_eq!(rs.len(), ps.len(), "lane count mismatch");
    assert_eq!(rs.len(), ts.len(), "lane count mismatch");
    assert_eq!(rs.len(), ws.len(), "lane count mismatch");
    assert_eq!(rs.len(), omegas.len(), "lane count mismatch");
    assert_eq!(rs.len(), betas.len(), "lane count mismatch");
    let map = grid.interior_map();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_lanes2_reduce(info, map, rs, map, ps, accs, |s, j, k, row_r, row_p| {
        let b = base0 + j * sy + k * sz;
        let (tsl, wsl, omega, beta) = (ts[s], ws[s], omegas[s], betas[s]);
        let mut acc = T::ZERO;
        for i in 0..row_r.len() {
            let rv = row_r[i] - omega * tsl[b + i];
            row_r[i] = rv;
            acc += rv * rv;
            row_p[i] = rv + beta * (row_p[i] - omega * wsl[b + i]);
        }
        [acc]
    });
}

/// Local interior dot product `a · b` (reduced per back-end policy).
///
/// Rows fold in the canonical edge-last order ([`fold_row_edge_last`]),
/// making the result bitwise identical to the split halo-overlap form
/// of the same dot (deep sweep + shell pieces + fold).
pub fn dot<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    a: &Field<T>,
    b: &Field<T>,
) -> T {
    let map = grid.interior_map();
    let [nx, ny, nz] = grid.local_n;
    let asl = a.as_slice();
    let bsl = b.as_slice();
    let base0 = map.base;
    let (len, sy, sz) = (map.len, map.sy, map.sz);
    let [s] = dev.launch_reduce(info.per_row(len), map.ny, map.nz, |j, k| {
        let off = base0 + j * sy + k * sz;
        let mid = row_has_deep_middle(nx, ny, nz, j, k);
        [fold_row_edge_last(len, mid, |i| {
            asl[off + i] * bsl[off + i]
        })]
    });
    s
}

/// Local interior dot pair `(a · b, a · a)` in one reduction — the
/// standalone form of the dots fused into `KernelBiCGS3`, used by the
/// overlapped operator path. Each component folds per row in the
/// canonical edge-last order, rows in `(j, k)` order with the back-end
/// partial merge, matching [`stencil::Laplacian::apply_fused_dot2`]
/// exactly, so given the same `a` the results are bitwise identical.
pub fn dot2<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    a: &Field<T>,
    b: &Field<T>,
) -> (T, T) {
    let map = grid.interior_map();
    let [nx, ny, nz] = grid.local_n;
    let asl = a.as_slice();
    let bsl = b.as_slice();
    let base0 = map.base;
    let (len, sy, sz) = (map.len, map.sy, map.sz);
    let [ab, aa] = dev.launch_reduce(info.per_row(len), map.ny, map.nz, |j, k| {
        let off = base0 + j * sy + k * sz;
        let mid = row_has_deep_middle(nx, ny, nz, j, k);
        [
            fold_row_edge_last(len, mid, |i| asl[off + i] * bsl[off + i]),
            fold_row_edge_last(len, mid, |i| {
                let av = asl[off + i];
                av * av
            }),
        ]
    });
    (ab, aa)
}

/// Local interior squared difference norm `Σ (a − b)²` (true-residual
/// evaluation `‖b − A x‖²` without materialising the difference).
pub fn diff_norm2<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    a: &Field<T>,
    b: &Field<T>,
) -> T {
    let map = grid.interior_map();
    let asl = a.as_slice();
    let bsl = b.as_slice();
    let base0 = map.base;
    let (len, sy, sz) = (map.len, map.sy, map.sz);
    let [s] = dev.launch_reduce(info.per_row(len), map.ny, map.nz, |j, k| {
        let off = base0 + j * sy + k * sz;
        let mut acc = T::ZERO;
        for i in 0..len {
            let d = asl[off + i] - bsl[off + i];
            acc += d * d;
        }
        [acc]
    });
    s
}

/// Local interior squared norm `a · a`.
pub fn norm2_local<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    a: &Field<T>,
) -> T {
    dot(dev, info, grid, a, a)
}

/// `out ← (f32) src` over the interior: the rounding boundary of the
/// mixed-precision preconditioner. Each element rounds to the nearest
/// representable `f32` (ties to even); ghosts are not touched — the
/// caller refreshes them in the target precision.
pub fn cast_down<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    out: &mut Field<f32>,
    src: &Field<T>,
) {
    let map = grid.interior_map();
    let ss = src.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, out.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v = ss[b + i].to_f64() as f32;
        }
    });
}

/// `out ← (T) src` over the interior — exact when `T = f64` (every
/// `f32` is representable), so the up-cast out of the mixed-precision
/// preconditioner introduces no rounding of its own.
pub fn cast_up<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    out: &mut Field<T>,
    src: &Field<f32>,
) {
    let map = grid.interior_map();
    let ss = src.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, out.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v = T::from_f64(f64::from(ss[b + i]));
        }
    });
}

/// `out ← factor * src` over the interior.
pub fn scale<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    out: &mut Field<T>,
    src: &Field<T>,
    factor: T,
) {
    let map = grid.interior_map();
    let ss = src.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, out.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v = factor * ss[b + i];
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::{Recorder, Serial};
    use blockgrid::{Decomp, GlobalGrid};

    fn setup() -> (Serial, BlockGrid) {
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([3, 3, 3], [0.1; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        (Serial::new(Recorder::disabled()), grid)
    }

    fn field_iota(dev: &Serial, grid: &BlockGrid, scale_by: f64) -> Field<f64> {
        let vals: Vec<f64> = (0..27).map(|i| i as f64 * scale_by).collect();
        Field::from_interior(dev, grid, &vals)
    }

    #[test]
    fn axpy_updates_interior_only() {
        let (dev, grid) = setup();
        let mut y = field_iota(&dev, &grid, 1.0);
        let x = field_iota(&dev, &grid, 2.0);
        axpy_inplace(&dev, INFO_BICGS2, &grid, &mut y, &x, 0.5);
        let yi = y.interior_to_host(&grid);
        for (i, v) in yi.iter().enumerate() {
            assert_eq!(*v, i as f64 + 0.5 * (2.0 * i as f64));
        }
        // halos untouched (still zero)
        assert_eq!(y.as_slice()[0], 0.0);
    }

    #[test]
    fn axpy2_combines_two_fields() {
        let (dev, grid) = setup();
        let mut y = field_iota(&dev, &grid, 0.0);
        let x1 = field_iota(&dev, &grid, 1.0);
        let x2 = field_iota(&dev, &grid, -1.0);
        axpy2_inplace(&dev, INFO_BICGS4, &grid, &mut y, &x1, 2.0, &x2, 3.0);
        let yi = y.interior_to_host(&grid);
        for (i, v) in yi.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f64 - 3.0 * i as f64);
        }
    }

    #[test]
    fn residual_update_matches_manual() {
        let (dev, grid) = setup();
        let mut r = field_iota(&dev, &grid, 1.0);
        let t = field_iota(&dev, &grid, 0.5);
        let r0t = field_iota(&dev, &grid, 2.0);
        let omega = 0.25;
        let (p1, p2) = residual_update_fused(&dev, INFO_BICGS5, &grid, &mut r, &t, omega, &r0t);
        let mut e1 = 0.0;
        let mut e2 = 0.0;
        for i in 0..27 {
            let rv = i as f64 - omega * 0.5 * i as f64;
            e1 += 2.0 * i as f64 * rv;
            e2 += rv * rv;
        }
        assert!((p1 - e1).abs() < 1e-12 * e1.abs().max(1.0));
        assert!((p2 - e2).abs() < 1e-12 * e2.abs().max(1.0));
        let ri = r.interior_to_host(&grid);
        assert_eq!(ri[4], 4.0 - 0.25 * 2.0);
    }

    #[test]
    fn p_update_formula() {
        let (dev, grid) = setup();
        let mut p = field_iota(&dev, &grid, 1.0);
        let r = field_iota(&dev, &grid, 3.0);
        let w = field_iota(&dev, &grid, 1.0);
        axpy3_inplace(&dev, INFO_BICGS6, &grid, &mut p, &r, &w, 2.0, 0.5);
        let pi = p.interior_to_host(&grid);
        for (i, v) in pi.iter().enumerate() {
            let x = i as f64;
            assert_eq!(*v, 3.0 * x + 2.0 * (x - 0.5 * x));
        }
    }

    #[test]
    fn dot_and_norm() {
        let (dev, grid) = setup();
        let a = field_iota(&dev, &grid, 1.0);
        let b = field_iota(&dev, &grid, 2.0);
        let d = dot(&dev, INFO_DOT, &grid, &a, &b);
        let expect: f64 = (0..27).map(|i| (i * i * 2) as f64).sum();
        assert_eq!(d, expect);
        let n2 = norm2_local(&dev, INFO_DOT, &grid, &a);
        let expect: f64 = (0..27).map(|i| (i * i) as f64).sum();
        assert_eq!(n2, expect);
    }

    #[test]
    fn scale_writes_out_of_place() {
        let (dev, grid) = setup();
        let src = field_iota(&dev, &grid, 1.0);
        let mut out = Field::zeros(&dev, &grid);
        scale(&dev, INFO_SCALE, &grid, &mut out, &src, -2.0);
        let oi = out.interior_to_host(&grid);
        for (i, v) in oi.iter().enumerate() {
            assert_eq!(*v, -2.0 * i as f64);
        }
    }

    #[test]
    fn dots_ignore_halo_contamination() {
        let (dev, grid) = setup();
        let mut a = field_iota(&dev, &grid, 1.0);
        // poison a ghost cell; interior dot must not see it
        let gi = grid.idx(0, 0, 0);
        a.as_mut_slice()[gi] = 1e9;
        let n2 = norm2_local(&dev, INFO_DOT, &grid, &a);
        let expect: f64 = (0..27).map(|i| (i * i) as f64).sum();
        assert_eq!(n2, expect);
    }

    fn setup_rect() -> (Serial, BlockGrid) {
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([5, 4, 6], [0.1; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        (Serial::new(Recorder::disabled()), grid)
    }

    fn rng_field(dev: &Serial, grid: &BlockGrid, seed: u64) -> Field<f64> {
        let n = grid.local_n.iter().product();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let vals: Vec<f64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        Field::from_interior(dev, grid, &vals)
    }

    #[test]
    fn fused_axpy_dot_bitwise_matches_unfused() {
        let (dev, grid) = setup_rect();
        let x = rng_field(&dev, &grid, 1);
        let g = rng_field(&dev, &grid, 2);
        let mut y_fused = rng_field(&dev, &grid, 3);
        let mut y_ref = rng_field(&dev, &grid, 3);
        let a = 0.37;
        let s_fused = axpy_dot(&dev, INFO_BICGS2F, &grid, &mut y_fused, &x, a, &g);
        axpy_inplace(&dev, INFO_BICGS2, &grid, &mut y_ref, &x, a);
        let s_ref = dot(&dev, INFO_DOT, &grid, &g, &y_ref);
        assert_eq!(s_fused.to_bits(), s_ref.to_bits());
        for (f, r) in y_fused.as_slice().iter().zip(y_ref.as_slice()) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn chained_axpy2_bitwise_matches_two_sequential_axpys() {
        let (dev, grid) = setup_rect();
        let x1 = rng_field(&dev, &grid, 4);
        let x2 = rng_field(&dev, &grid, 5);
        let mut y_fused = rng_field(&dev, &grid, 6);
        let mut y_ref = rng_field(&dev, &grid, 6);
        let (a1, a2) = (0.73, -1.19);
        axpy2_chained_inplace(&dev, INFO_BICGS4, &grid, &mut y_fused, &x1, a1, &x2, a2);
        axpy_inplace(&dev, INFO_BICGS4A, &grid, &mut y_ref, &x1, a1);
        axpy_inplace(&dev, INFO_BICGS4B, &grid, &mut y_ref, &x2, a2);
        for (f, r) in y_fused.as_slice().iter().zip(y_ref.as_slice()) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn norm2_axpy_bitwise_matches_copy_axpy_dot() {
        let (dev, grid) = setup_rect();
        let b = rng_field(&dev, &grid, 7);
        let w = rng_field(&dev, &grid, 8);
        let mut r_fused = Field::zeros(&dev, &grid);
        let n2_fused = norm2_axpy(&dev, INFO_NORM2AXPY, &grid, &mut r_fused, &b, &w);
        let mut r_ref = Field::zeros(&dev, &grid);
        r_ref.copy_from(&b);
        axpy_inplace(&dev, INFO_BICGS2, &grid, &mut r_ref, &w, -1.0);
        let n2_ref = dot(&dev, INFO_DOT, &grid, &r_ref, &r_ref);
        assert_eq!(n2_fused.to_bits(), n2_ref.to_bits());
        let mi = grid.interior_map();
        let (ri, rr) = (r_fused.as_slice(), r_ref.as_slice());
        for k in 0..mi.nz {
            for j in 0..mi.ny {
                let off = mi.row_offset(j, k);
                for i in off..off + mi.len {
                    assert_eq!(ri[i].to_bits(), rr[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn fused_bicgs56_bitwise_matches_bicgs5_then_bicgs6() {
        let (dev, grid) = setup_rect();
        let t = rng_field(&dev, &grid, 9);
        let w = rng_field(&dev, &grid, 10);
        let r0t = rng_field(&dev, &grid, 11);
        let (omega, beta) = (0.41, -0.87);
        let mut r_fused = rng_field(&dev, &grid, 12);
        let mut p_fused = rng_field(&dev, &grid, 13);
        let n2_fused = residual_p_update_fused(
            &dev,
            INFO_BICGS56,
            &grid,
            &mut r_fused,
            &mut p_fused,
            &t,
            &w,
            omega,
            beta,
        );
        let mut r_ref = rng_field(&dev, &grid, 12);
        let mut p_ref = rng_field(&dev, &grid, 13);
        let (_, n2_ref) =
            residual_update_fused(&dev, INFO_BICGS5, &grid, &mut r_ref, &t, omega, &r0t);
        axpy3_inplace(
            &dev,
            INFO_BICGS6,
            &grid,
            &mut p_ref,
            &r_ref,
            &w,
            beta,
            omega,
        );
        assert_eq!(n2_fused.to_bits(), n2_ref.to_bits());
        for (f, r) in r_fused.as_slice().iter().zip(r_ref.as_slice()) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
        for (f, r) in p_fused.as_slice().iter().zip(p_ref.as_slice()) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    /// Overwrite every non-interior (ghost/padding) cell with NaN, the
    /// most contagious contaminant: one stray read poisons the result.
    fn poison_ghosts(grid: &BlockGrid, f: &mut Field<f64>) {
        let mi = grid.interior_map();
        let mut interior = vec![false; f.as_slice().len()];
        for k in 0..mi.nz {
            for j in 0..mi.ny {
                let off = mi.row_offset(j, k);
                interior[off..off + mi.len]
                    .iter_mut()
                    .for_each(|b| *b = true);
            }
        }
        for (v, keep) in f.as_mut_slice().iter_mut().zip(&interior) {
            if !keep {
                *v = f64::NAN;
            }
        }
    }

    #[test]
    fn fused_reductions_ignore_nan_poisoned_ghosts() {
        // The fused single-sweep reductions must walk exactly the interior
        // rows: a NaN in any ghost or pad cell they wrongly touched would
        // surface in the scalar. Results must be bitwise identical to the
        // clean-field run.
        let (dev, grid) = setup_rect();
        let run = |poison: bool| -> [f64; 4] {
            let mut x = rng_field(&dev, &grid, 21);
            let mut g = rng_field(&dev, &grid, 22);
            let mut b = rng_field(&dev, &grid, 23);
            let mut w = rng_field(&dev, &grid, 24);
            let mut t = rng_field(&dev, &grid, 25);
            let mut y = rng_field(&dev, &grid, 26);
            let mut r = rng_field(&dev, &grid, 27);
            let mut p = rng_field(&dev, &grid, 28);
            if poison {
                for f in [
                    &mut x, &mut g, &mut b, &mut w, &mut t, &mut y, &mut r, &mut p,
                ] {
                    poison_ghosts(&grid, f);
                }
            }
            let s1 = axpy_dot(&dev, INFO_BICGS2F, &grid, &mut y, &x, 0.59, &g);
            let mut res = Field::zeros(&dev, &grid);
            let s2 = norm2_axpy(&dev, INFO_NORM2AXPY, &grid, &mut res, &b, &w);
            let s3 = residual_p_update_fused(
                &dev,
                INFO_BICGS56,
                &grid,
                &mut r,
                &mut p,
                &t,
                &w,
                0.3,
                1.7,
            );
            let (s4a, s4b) = residual_update_fused(&dev, INFO_BICGS5, &grid, &mut r, &t, 0.3, &g);
            [s1, s2, s3, s4a + s4b]
        };
        let clean = run(false);
        let poisoned = run(true);
        for (c, q) in clean.iter().zip(&poisoned) {
            assert!(q.is_finite(), "a fused reduction read a ghost cell: {q}");
            assert_eq!(c.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn batch_kernels_bitwise_match_solo_per_lane() {
        // Every *_batch kernel must leave each lane bitwise identical to
        // the solo kernel run over that lane's fields alone — fields and
        // reduction scalars both.
        let (dev, grid) = setup_rect();
        let nb = 3;
        let coefs: Vec<f64> = vec![0.37, -1.19, 0.73];
        let omegas: Vec<f64> = vec![0.41, 0.29, -0.63];
        let betas: Vec<f64> = vec![-0.87, 1.31, 0.11];

        // Per-lane field sets, one "batched" copy and one "solo" copy.
        let mk = |seed: u64| rng_field(&dev, &grid, seed);
        let mut r_b: Vec<Field<f64>> = (0..nb).map(|l| mk(100 + l as u64)).collect();
        let mut r_s: Vec<Field<f64>> = (0..nb).map(|l| mk(100 + l as u64)).collect();
        let mut p_b: Vec<Field<f64>> = (0..nb).map(|l| mk(200 + l as u64)).collect();
        let mut p_s: Vec<Field<f64>> = (0..nb).map(|l| mk(200 + l as u64)).collect();
        let t: Vec<Field<f64>> = (0..nb).map(|l| mk(300 + l as u64)).collect();
        let w: Vec<Field<f64>> = (0..nb).map(|l| mk(400 + l as u64)).collect();
        let g: Vec<Field<f64>> = (0..nb).map(|l| mk(500 + l as u64)).collect();
        let b_rhs: Vec<Field<f64>> = (0..nb).map(|l| mk(600 + l as u64)).collect();

        // norm2_axpy_batch vs norm2_axpy
        let mut out_b: Vec<Field<f64>> = (0..nb).map(|_| Field::zeros(&dev, &grid)).collect();
        let mut accs = vec![[0.0f64; 1]; nb];
        {
            let mut outs: Vec<&mut [f64]> = out_b.iter_mut().map(|f| f.as_mut_slice()).collect();
            let bs: Vec<&[f64]> = b_rhs.iter().map(|f| f.as_slice()).collect();
            let ws: Vec<&[f64]> = w.iter().map(|f| f.as_slice()).collect();
            norm2_axpy_batch(&dev, INFO_NORM2AXPY, &grid, &mut outs, &bs, &ws, &mut accs);
        }
        for l in 0..nb {
            let mut out_ref = Field::zeros(&dev, &grid);
            let n2 = norm2_axpy(&dev, INFO_NORM2AXPY, &grid, &mut out_ref, &b_rhs[l], &w[l]);
            assert_eq!(accs[l][0].to_bits(), n2.to_bits());
            for (a, b) in out_b[l].as_slice().iter().zip(out_ref.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // axpy_dot_batch vs axpy_dot (updates r in place)
        let mut accs2 = vec![[0.0f64; 1]; nb];
        {
            let mut ys: Vec<&mut [f64]> = r_b.iter_mut().map(|f| f.as_mut_slice()).collect();
            let xs: Vec<&[f64]> = w.iter().map(|f| f.as_slice()).collect();
            let gs: Vec<&[f64]> = g.iter().map(|f| f.as_slice()).collect();
            axpy_dot_batch(
                &dev,
                INFO_BICGS2F,
                &grid,
                &mut ys,
                &xs,
                &coefs,
                &gs,
                &mut accs2,
            );
        }
        for l in 0..nb {
            let s = axpy_dot(
                &dev,
                INFO_BICGS2F,
                &grid,
                &mut r_s[l],
                &w[l],
                coefs[l],
                &g[l],
            );
            assert_eq!(accs2[l][0].to_bits(), s.to_bits());
            for (a, b) in r_b[l].as_slice().iter().zip(r_s[l].as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // residual_p_update_fused_batch vs residual_p_update_fused
        let mut accs3 = vec![[0.0f64; 1]; nb];
        {
            let mut rs: Vec<&mut [f64]> = r_b.iter_mut().map(|f| f.as_mut_slice()).collect();
            let mut ps: Vec<&mut [f64]> = p_b.iter_mut().map(|f| f.as_mut_slice()).collect();
            let ts: Vec<&[f64]> = t.iter().map(|f| f.as_slice()).collect();
            let ws: Vec<&[f64]> = w.iter().map(|f| f.as_slice()).collect();
            residual_p_update_fused_batch(
                &dev,
                INFO_BICGS56,
                &grid,
                &mut rs,
                &mut ps,
                &ts,
                &ws,
                &omegas,
                &betas,
                &mut accs3,
            );
        }
        for l in 0..nb {
            let n2 = residual_p_update_fused(
                &dev,
                INFO_BICGS56,
                &grid,
                &mut r_s[l],
                &mut p_s[l],
                &t[l],
                &w[l],
                omegas[l],
                betas[l],
            );
            assert_eq!(accs3[l][0].to_bits(), n2.to_bits());
            for (a, b) in r_b[l].as_slice().iter().zip(r_s[l].as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in p_b[l].as_slice().iter().zip(p_s[l].as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // axpy2_chained_batch vs axpy2_chained_inplace (updates p in place)
        {
            let mut ys: Vec<&mut [f64]> = p_b.iter_mut().map(|f| f.as_mut_slice()).collect();
            let x1s: Vec<&[f64]> = t.iter().map(|f| f.as_slice()).collect();
            let x2s: Vec<&[f64]> = g.iter().map(|f| f.as_slice()).collect();
            axpy2_chained_batch(
                &dev,
                INFO_BICGS4,
                &grid,
                &mut ys,
                &x1s,
                &coefs,
                &x2s,
                &omegas,
            );
        }
        for l in 0..nb {
            axpy2_chained_inplace(
                &dev,
                INFO_BICGS4,
                &grid,
                &mut p_s[l],
                &t[l],
                coefs[l],
                &g[l],
                omegas[l],
            );
            for (a, b) in p_b[l].as_slice().iter().zip(p_s[l].as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn casts_roundtrip_and_ignore_poisoned_ghosts() {
        // The precision boundary: down-cast rounds once, up-cast is
        // exact, and neither sweep reads or writes a ghost cell — a NaN
        // planted there must neither leak into the output interior nor
        // be cleared.
        let (dev, grid) = setup_rect();
        let mut src = rng_field(&dev, &grid, 31);
        poison_ghosts(&grid, &mut src);
        let mut narrow = Field::<f32>::zeros(&dev, &grid);
        cast_down(&dev, INFO_CAST_DOWN, &grid, &mut narrow, &src);
        for v in narrow.as_slice() {
            assert!(v.is_finite(), "cast_down touched a ghost");
        }
        let mut wide = Field::<f64>::zeros(&dev, &grid);
        cast_up(&dev, INFO_CAST_UP, &grid, &mut wide, &narrow);
        let si = src.interior_to_host(&grid);
        let wi = wide.interior_to_host(&grid);
        for (a, b) in si.iter().zip(&wi) {
            assert_eq!(f64::from(*a as f32), *b, "f64→f32→f64 must round once");
        }
    }

    #[test]
    fn f32_info_constants_halve_sweep_traffic() {
        assert_eq!(INFO_CI1_F32.bytes_per_elem * 2, INFO_CI1.bytes_per_elem);
        assert_eq!(INFO_CI2_F32.bytes_per_elem * 2, INFO_CI2.bytes_per_elem);
        assert_eq!(INFO_SCALE_F32.bytes_per_elem * 2, INFO_SCALE.bytes_per_elem);
        assert_eq!(INFO_CI1_F32.flops_per_elem, INFO_CI1.flops_per_elem);
        assert_eq!(INFO_CI2_F32.flops_per_elem, INFO_CI2.flops_per_elem);
    }

    #[test]
    fn fused_info_constants_dedup_traffic() {
        assert_eq!(INFO_BICGS2F.bytes_per_elem, 32);
        assert_eq!(INFO_BICGS2F.flops_per_elem, 4);
        assert_eq!(INFO_BICGS3F.bytes_per_elem, 48);
        assert_eq!(INFO_BICGS3F.flops_per_elem, 16);
    }
}
