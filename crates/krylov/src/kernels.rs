//! The fused Bi-CGSTAB vector kernels of Algorithm 3.
//!
//! The paper merges the BLAS-1 operations of the textbook algorithm into
//! six fused kernels (`KernelBiCGS1..6`) to improve temporal locality;
//! `KernelBiCGS1` and `KernelBiCGS3` additionally fuse the stencil apply
//! with the local scalar products (those two live on
//! [`stencil::Laplacian`]). This module provides the remaining vector
//! kernels, all operating on subdomain interiors.

use accel::{Device, KernelInfo, Scalar};
use blockgrid::{BlockGrid, Field};

/// `KernelBiCGS2`: `r ← r − α w` (one stream in, one in/out, 2 flops).
pub const INFO_BICGS2: KernelInfo = KernelInfo::new("KernelBiCGS2", 24, 2);
/// `KernelBiCGS4`: `x ← x + α p̂ + ω r̂`.
pub const INFO_BICGS4: KernelInfo = KernelInfo::new("KernelBiCGS4", 32, 4);
/// First half of the split x-update, `x ← x + α p̂`. The reduction-overlap
/// schedule posts each half inside a different reduction window, so the
/// fused `KernelBiCGS4` splits into two plain axpys (re-streaming `x`
/// once: 48 B/elem total vs 32 B fused — the traffic price of the hide).
pub const INFO_BICGS4A: KernelInfo = KernelInfo::new("KernelBiCGS4a", 24, 2);
/// Second half of the split x-update, `x ← x + ω r̂` (deferred into the
/// next iteration's first reduction window when overlap is on).
pub const INFO_BICGS4B: KernelInfo = KernelInfo::new("KernelBiCGS4b", 24, 2);
/// `KernelBiCGS5`: `r ← r − ω t` fused with the dots `r̃·r` and `r·r`.
pub const INFO_BICGS5: KernelInfo = KernelInfo::new("KernelBiCGS5", 32, 6);
/// `KernelBiCGS6`: `p ← r + β (p − ω w)`.
pub const INFO_BICGS6: KernelInfo = KernelInfo::new("KernelBiCGS6", 32, 4);
/// `KernelBiCGS1` (stencil + dot, launched via `Laplacian::apply_fused_dot`).
pub const INFO_BICGS1: KernelInfo = KernelInfo::new("KernelBiCGS1", 40, 12);
/// `KernelBiCGS3` (stencil + two dots, via `Laplacian::apply_fused_dot2`).
pub const INFO_BICGS3: KernelInfo = KernelInfo::new("KernelBiCGS3", 48, 14);
/// `KernelCI1`: Chebyshev start step `z = b/θ`, `y = c1 b + ca A b`.
pub const INFO_CI1: KernelInfo = KernelInfo::new("KernelCI1", 40, 12);
/// `KernelCI2`: Chebyshev sweep `w = ca A y + c1 y + c2 b + c3 z`.
pub const INFO_CI2: KernelInfo = KernelInfo::new("KernelCI2", 56, 16);
/// Plain local dot product (initial `ρ_0 = r̃ᵀ r_0` of Alg. 3 line 4).
pub const INFO_DOT: KernelInfo = KernelInfo::new("KernelDot", 16, 2);
/// Scaling kernel (`z = b/θ` half of `KernelCI1`; also RHS normalisation).
pub const INFO_SCALE: KernelInfo = KernelInfo::new("KernelScale", 16, 1);

/// `y ← y + a x` over the interior.
pub fn axpy_inplace<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    y: &mut Field<T>,
    x: &Field<T>,
    a: T,
) {
    let map = grid.interior_map();
    let xs = x.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, y.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v += a * xs[b + i];
        }
    });
}

/// `y ← y + a1 x1 + a2 x2` over the interior (`KernelBiCGS4` shape).
#[allow(clippy::too_many_arguments)]
pub fn axpy2_inplace<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    y: &mut Field<T>,
    x1: &Field<T>,
    a1: T,
    x2: &Field<T>,
    a2: T,
) {
    let map = grid.interior_map();
    let x1s = x1.as_slice();
    let x2s = x2.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, y.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v += a1 * x1s[b + i] + a2 * x2s[b + i];
        }
    });
}

/// `KernelBiCGS5`: `r ← r − ω t`, returning the local partial sums
/// `(r̃ · r, r · r)` of the updated residual.
pub fn residual_update_fused<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    r: &mut Field<T>,
    t: &Field<T>,
    omega: T,
    r0t: &Field<T>,
) -> (T, T) {
    let map = grid.interior_map();
    let ts = t.as_slice();
    let r0s = r0t.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    let [p1, p2] = dev.launch_rows_reduce(info, map, r.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        let mut s1 = T::ZERO;
        let mut s2 = T::ZERO;
        for (i, v) in row.iter_mut().enumerate() {
            let rv = *v - omega * ts[b + i];
            *v = rv;
            s1 += r0s[b + i] * rv;
            s2 += rv * rv;
        }
        [s1, s2]
    });
    (p1, p2)
}

/// `KernelBiCGS6`: `p ← r + β (p − ω w)`.
#[allow(clippy::too_many_arguments)]
pub fn p_update<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    p: &mut Field<T>,
    r: &Field<T>,
    w: &Field<T>,
    beta: T,
    omega: T,
) {
    let map = grid.interior_map();
    let rs = r.as_slice();
    let ws = w.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, p.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v = rs[b + i] + beta * (*v - omega * ws[b + i]);
        }
    });
}

/// Local interior dot product `a · b` (reduced per back-end policy).
pub fn dot<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    a: &Field<T>,
    b: &Field<T>,
) -> T {
    let map = grid.interior_map();
    let asl = a.as_slice();
    let bsl = b.as_slice();
    let base0 = map.base;
    let (len, sy, sz) = (map.len, map.sy, map.sz);
    let [s] = dev.launch_reduce(info, map.ny, map.nz, |j, k| {
        let off = base0 + j * sy + k * sz;
        let mut acc = T::ZERO;
        for i in 0..len {
            acc += asl[off + i] * bsl[off + i];
        }
        [acc]
    });
    s
}

/// Local interior dot pair `(a · b, a · a)` in one reduction — the
/// standalone form of the dots fused into `KernelBiCGS3`, used by the
/// overlapped operator path. The per-row accumulation order (`a·b` then
/// `a·a`, rows in `(j, k)` order, back-end partial merge) matches
/// [`stencil::Laplacian::apply_fused_dot2`] exactly, so given the same
/// `a` the results are bitwise identical.
pub fn dot2<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    a: &Field<T>,
    b: &Field<T>,
) -> (T, T) {
    let map = grid.interior_map();
    let asl = a.as_slice();
    let bsl = b.as_slice();
    let base0 = map.base;
    let (len, sy, sz) = (map.len, map.sy, map.sz);
    let [ab, aa] = dev.launch_reduce(info, map.ny, map.nz, |j, k| {
        let off = base0 + j * sy + k * sz;
        let mut acc_ab = T::ZERO;
        let mut acc_aa = T::ZERO;
        for i in 0..len {
            let av = asl[off + i];
            acc_ab += av * bsl[off + i];
            acc_aa += av * av;
        }
        [acc_ab, acc_aa]
    });
    (ab, aa)
}

/// Local interior squared difference norm `Σ (a − b)²` (true-residual
/// evaluation `‖b − A x‖²` without materialising the difference).
pub fn diff_norm2<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    a: &Field<T>,
    b: &Field<T>,
) -> T {
    let map = grid.interior_map();
    let asl = a.as_slice();
    let bsl = b.as_slice();
    let base0 = map.base;
    let (len, sy, sz) = (map.len, map.sy, map.sz);
    let [s] = dev.launch_reduce(info, map.ny, map.nz, |j, k| {
        let off = base0 + j * sy + k * sz;
        let mut acc = T::ZERO;
        for i in 0..len {
            let d = asl[off + i] - bsl[off + i];
            acc += d * d;
        }
        [acc]
    });
    s
}

/// Local interior squared norm `a · a`.
pub fn norm2_local<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    a: &Field<T>,
) -> T {
    dot(dev, info, grid, a, a)
}

/// `out ← factor * src` over the interior.
pub fn scale<T: Scalar, D: Device>(
    dev: &D,
    info: KernelInfo,
    grid: &BlockGrid,
    out: &mut Field<T>,
    src: &Field<T>,
    factor: T,
) {
    let map = grid.interior_map();
    let ss = src.as_slice();
    let base0 = map.base;
    let (sy, sz) = (map.sy, map.sz);
    dev.launch_rows(info, map, out.as_mut_slice(), |j, k, row| {
        let b = base0 + j * sy + k * sz;
        for (i, v) in row.iter_mut().enumerate() {
            *v = factor * ss[b + i];
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::{Recorder, Serial};
    use blockgrid::{Decomp, GlobalGrid};

    fn setup() -> (Serial, BlockGrid) {
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([3, 3, 3], [0.1; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        (Serial::new(Recorder::disabled()), grid)
    }

    fn field_iota(dev: &Serial, grid: &BlockGrid, scale_by: f64) -> Field<f64> {
        let vals: Vec<f64> = (0..27).map(|i| i as f64 * scale_by).collect();
        Field::from_interior(dev, grid, &vals)
    }

    #[test]
    fn axpy_updates_interior_only() {
        let (dev, grid) = setup();
        let mut y = field_iota(&dev, &grid, 1.0);
        let x = field_iota(&dev, &grid, 2.0);
        axpy_inplace(&dev, INFO_BICGS2, &grid, &mut y, &x, 0.5);
        let yi = y.interior_to_host(&grid);
        for (i, v) in yi.iter().enumerate() {
            assert_eq!(*v, i as f64 + 0.5 * (2.0 * i as f64));
        }
        // halos untouched (still zero)
        assert_eq!(y.as_slice()[0], 0.0);
    }

    #[test]
    fn axpy2_combines_two_fields() {
        let (dev, grid) = setup();
        let mut y = field_iota(&dev, &grid, 0.0);
        let x1 = field_iota(&dev, &grid, 1.0);
        let x2 = field_iota(&dev, &grid, -1.0);
        axpy2_inplace(&dev, INFO_BICGS4, &grid, &mut y, &x1, 2.0, &x2, 3.0);
        let yi = y.interior_to_host(&grid);
        for (i, v) in yi.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f64 - 3.0 * i as f64);
        }
    }

    #[test]
    fn residual_update_matches_manual() {
        let (dev, grid) = setup();
        let mut r = field_iota(&dev, &grid, 1.0);
        let t = field_iota(&dev, &grid, 0.5);
        let r0t = field_iota(&dev, &grid, 2.0);
        let omega = 0.25;
        let (p1, p2) = residual_update_fused(&dev, INFO_BICGS5, &grid, &mut r, &t, omega, &r0t);
        let mut e1 = 0.0;
        let mut e2 = 0.0;
        for i in 0..27 {
            let rv = i as f64 - omega * 0.5 * i as f64;
            e1 += 2.0 * i as f64 * rv;
            e2 += rv * rv;
        }
        assert!((p1 - e1).abs() < 1e-12 * e1.abs().max(1.0));
        assert!((p2 - e2).abs() < 1e-12 * e2.abs().max(1.0));
        let ri = r.interior_to_host(&grid);
        assert_eq!(ri[4], 4.0 - 0.25 * 2.0);
    }

    #[test]
    fn p_update_formula() {
        let (dev, grid) = setup();
        let mut p = field_iota(&dev, &grid, 1.0);
        let r = field_iota(&dev, &grid, 3.0);
        let w = field_iota(&dev, &grid, 1.0);
        p_update(&dev, INFO_BICGS6, &grid, &mut p, &r, &w, 2.0, 0.5);
        let pi = p.interior_to_host(&grid);
        for (i, v) in pi.iter().enumerate() {
            let x = i as f64;
            assert_eq!(*v, 3.0 * x + 2.0 * (x - 0.5 * x));
        }
    }

    #[test]
    fn dot_and_norm() {
        let (dev, grid) = setup();
        let a = field_iota(&dev, &grid, 1.0);
        let b = field_iota(&dev, &grid, 2.0);
        let d = dot(&dev, INFO_DOT, &grid, &a, &b);
        let expect: f64 = (0..27).map(|i| (i * i * 2) as f64).sum();
        assert_eq!(d, expect);
        let n2 = norm2_local(&dev, INFO_DOT, &grid, &a);
        let expect: f64 = (0..27).map(|i| (i * i) as f64).sum();
        assert_eq!(n2, expect);
    }

    #[test]
    fn scale_writes_out_of_place() {
        let (dev, grid) = setup();
        let src = field_iota(&dev, &grid, 1.0);
        let mut out = Field::zeros(&dev, &grid);
        scale(&dev, INFO_SCALE, &grid, &mut out, &src, -2.0);
        let oi = out.interior_to_host(&grid);
        for (i, v) in oi.iter().enumerate() {
            assert_eq!(*v, -2.0 * i as f64);
        }
    }

    #[test]
    fn dots_ignore_halo_contamination() {
        let (dev, grid) = setup();
        let mut a = field_iota(&dev, &grid, 1.0);
        // poison a ghost cell; interior dot must not see it
        let gi = grid.idx(0, 0, 0);
        a.as_mut_slice()[gi] = 1e9;
        let n2 = norm2_local(&dev, INFO_DOT, &grid, &a);
        let expect: f64 = (0..27).map(|i| (i * i) as f64).sum();
        assert_eq!(n2, expect);
    }
}
