//! The Chebyshev iteration (Algorithms 2 and 4 of the paper).
//!
//! Given the extreme eigenvalues `[α, β]` of the operator, the Chebyshev
//! iteration approximates `A⁻¹ b` with a fixed polynomial recurrence —
//! no scalar products, hence *reduction-free*, which makes it a fixed
//! preconditioner (Sec. III-A). Three communication flavours implement
//! the paper's preconditioner family:
//!
//! * [`ChebyMode::Global`] — halo exchanges every sweep: approximates the
//!   global `A⁻¹` (the `G(CI)` preconditioner).
//! * [`ChebyMode::GlobalNoComm`] — skips all communication but keeps the
//!   *global* eigenvalue bounds (`GNoComm(CI)`). As the paper notes, this
//!   is equivalent to a Block-Jacobi application with global Chebyshev
//!   parameters; the operator restriction zeroes interface ghosts.
//! * [`ChebyMode::BlockJacobi`] — same restricted operator but with the
//!   *local* subdomain bounds (`BJ(CI)`, Eq. 14).

use accel::{Device, Scalar};
use blockgrid::Field;
use comm::Communicator;
use stencil::{apply_physical_bcs, spectrum, SpectralBounds};

use crate::ctx::RankCtx;
use crate::kernels::{INFO_CI1, INFO_CI2, INFO_SCALE};

/// Communication flavour of the Chebyshev iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChebyMode {
    /// Exchange halos before every operator application (not comm-free).
    Global,
    /// No communication; global spectral bounds (`GNoComm`).
    GlobalNoComm,
    /// No communication; local (subdomain) spectral bounds (`BJ`).
    BlockJacobi,
}

impl ChebyMode {
    /// `true` if this flavour never communicates.
    pub fn comm_free(self) -> bool {
        !matches!(self, Self::Global)
    }
}

/// Extreme eigenvalues of the rank's *global* operator (Eqs. 10–11).
pub fn global_bounds<T: Scalar, D: Device, C: Communicator<T>>(
    ctx: &RankCtx<T, D, C>,
) -> SpectralBounds {
    spectrum::kronecker_bounds(&ctx.lap.global_ops(), ctx.grid.global.h)
}

/// Extreme eigenvalues of the rank's *restricted* operator
/// `R_s A R_sᵀ` (interfaces truncated, Eq. 13).
pub fn local_bounds<T: Scalar, D: Device, C: Communicator<T>>(
    ctx: &RankCtx<T, D, C>,
) -> SpectralBounds {
    spectrum::kronecker_bounds(&ctx.lap.local_ops(), ctx.grid.global.h)
}

/// Refresh a field's ghost layers according to the iteration's mode.
fn refresh_ghosts<T: Scalar, D: Device, C: Communicator<T>>(
    mode: ChebyMode,
    ctx: &RankCtx<T, D, C>,
    f: &mut Field<T>,
) {
    match mode {
        ChebyMode::Global => {
            ctx.halo.exchange(&ctx.dev, &ctx.comm, f);
            apply_physical_bcs(&ctx.grid, f, &ctx.recorder, false);
        }
        ChebyMode::GlobalNoComm | ChebyMode::BlockJacobi => {
            apply_physical_bcs(&ctx.grid, f, &ctx.recorder, true);
        }
    }
}

/// A configured Chebyshev iteration with its own rotation buffers.
pub struct ChebyshevIteration<T> {
    mode: ChebyMode,
    iterations: usize,
    overlap: bool,
    theta: f64,
    delta: f64,
    sigma: f64,
    z: Field<T>,
    y: Field<T>,
    w: Field<T>,
}

impl<T: Scalar> ChebyshevIteration<T> {
    /// Configure the iteration for `ctx` with the given (already
    /// rescaled) spectral bounds and sweep count (`iterMax >= 1`).
    pub fn new<D: Device, C: Communicator<T>>(
        ctx: &RankCtx<T, D, C>,
        mode: ChebyMode,
        bounds: SpectralBounds,
        iterations: usize,
    ) -> Self {
        assert!(iterations >= 1, "Chebyshev needs at least one sweep");
        assert!(
            bounds.min > 0.0 && bounds.max > bounds.min,
            "Chebyshev needs 0 < min < max, got {bounds:?}"
        );
        // Eq. 15
        let theta = 0.5 * (bounds.max + bounds.min);
        let delta = 0.5 * (bounds.max - bounds.min);
        let sigma = theta / delta;
        Self {
            mode,
            iterations,
            overlap: true,
            theta,
            delta,
            sigma,
            z: ctx.field(),
            y: ctx.field(),
            w: ctx.field(),
        }
    }

    /// Enable or disable split-phase halo overlap in [`ChebyMode::Global`]
    /// (on by default; no effect in the communication-free modes). The
    /// sweeps are bitwise-identical either way — the flag only changes
    /// how the exchange is scheduled and modeled.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Number of sweeps per application.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The iteration's communication flavour.
    pub fn mode(&self) -> ChebyMode {
        self.mode
    }

    /// The Chebyshev parameters `(θ, δ, σ)` of Eq. 15.
    pub fn parameters(&self) -> (f64, f64, f64) {
        (self.theta, self.delta, self.sigma)
    }

    /// Run `iterMax` sweeps of Algorithm 4, writing `x ≈ A⁻¹ b`.
    ///
    /// `b`'s ghost layers are refreshed (its interior is unchanged);
    /// returns the number of sweeps performed.
    pub fn solve<D: Device, C: Communicator<T>>(
        &mut self,
        ctx: &RankCtx<T, D, C>,
        b: &mut Field<T>,
        x: &mut Field<T>,
    ) -> usize {
        let theta = self.theta;
        let delta = self.delta;
        let sigma = self.sigma;
        let mut rho_old = 1.0 / sigma;
        let mut rho_cur = 1.0 / (2.0 * sigma - rho_old);

        // Split-phase overlap only makes sense when the mode communicates.
        let overlap = self.overlap && self.mode == ChebyMode::Global;

        // KernelCI1: z = b/θ ; y = 2 ρ/δ (2 b − A b / θ). Overlapped, the
        // exchange of b's halos hides behind the ghost-independent scale
        // kernel and the deep-interior part of the sweep.
        let c1 = T::from_f64(4.0 * rho_cur / delta);
        let ca = T::from_f64(-2.0 * rho_cur / (delta * theta));
        let inv_theta = T::from_f64(1.0 / theta);
        if overlap {
            let pending = ctx.halo.begin(&ctx.dev, &ctx.comm, b);
            apply_physical_bcs(&ctx.grid, b, &ctx.recorder, false);
            crate::kernels::scale(&ctx.dev, INFO_SCALE, &ctx.grid, &mut self.z, b, inv_theta);
            ctx.lap
                .apply_combine_interior(&ctx.dev, INFO_CI1, b, &mut self.y, ca, &[(b, c1)]);
            ctx.halo.finish(&ctx.dev, &ctx.comm, pending, b);
            ctx.lap
                .apply_combine_shell(&ctx.dev, INFO_CI1, b, &mut self.y, ca, &[(b, c1)]);
        } else {
            // MPI1 + KernelNeumannBCs on b
            refresh_ghosts(self.mode, ctx, b);
            crate::kernels::scale(&ctx.dev, INFO_SCALE, &ctx.grid, &mut self.z, b, inv_theta);
            ctx.lap
                .apply_combine(&ctx.dev, INFO_CI1, b, &mut self.y, ca, &[(b, c1)]);
        }

        for _i in 2..=self.iterations {
            // host-side ρ recurrence (the only CPU work in the CI loop)
            rho_old = rho_cur;
            rho_cur = 1.0 / (2.0 * sigma - rho_old);
            // KernelCI2: w = ρ (2σ y + 2/δ (b − A y) − ρ_old z)
            let ca = T::from_f64(-2.0 * rho_cur / delta);
            let cy = T::from_f64(2.0 * sigma * rho_cur);
            let cb = T::from_f64(2.0 * rho_cur / delta);
            let cz = T::from_f64(-rho_cur * rho_old);
            if overlap {
                // MPI2 in flight behind BCs + the deep-interior sweep
                let pending = ctx.halo.begin(&ctx.dev, &ctx.comm, &self.y);
                apply_physical_bcs(&ctx.grid, &mut self.y, &ctx.recorder, false);
                let (y_ref, z_ref, w_mut) = (&self.y, &self.z, &mut self.w);
                ctx.lap.apply_combine_interior(
                    &ctx.dev,
                    INFO_CI2,
                    y_ref,
                    w_mut,
                    ca,
                    &[(y_ref, cy), (b, cb), (z_ref, cz)],
                );
                ctx.halo.finish(&ctx.dev, &ctx.comm, pending, &mut self.y);
                let (y_ref, z_ref, w_mut) = (&self.y, &self.z, &mut self.w);
                ctx.lap.apply_combine_shell(
                    &ctx.dev,
                    INFO_CI2,
                    y_ref,
                    w_mut,
                    ca,
                    &[(y_ref, cy), (b, cb), (z_ref, cz)],
                );
            } else {
                // MPI2 + KernelNeumannBCs on y
                refresh_ghosts(self.mode, ctx, &mut self.y);
                // borrow juggling: compute into `w` from (y, b, z)
                let (y_ref, z_ref, w_mut) = (&self.y, &self.z, &mut self.w);
                ctx.lap.apply_combine(
                    &ctx.dev,
                    INFO_CI2,
                    y_ref,
                    w_mut,
                    ca,
                    &[(y_ref, cy), (b, cb), (z_ref, cz)],
                );
            }
            // pointer rotation: z ← y, y ← w (w's old storage becomes scratch)
            self.z.swap(&mut self.y);
            self.y.swap(&mut self.w);
        }
        x.copy_from(&self.y);
        self.iterations
    }
}

/// Outcome of using the Chebyshev iteration as the *main* solver.
#[derive(Clone, Debug)]
pub struct ChebyOutcome {
    /// `true` if the residual tolerance was met.
    pub converged: bool,
    /// Total Chebyshev sweeps performed (across restarts).
    pub sweeps: usize,
    /// Residual 2-norm after each restart cycle, starting with `‖r_0‖`.
    pub residual_history: Vec<f64>,
    /// Final residual 2-norm.
    pub final_residual: f64,
}

impl<T: Scalar> ChebyshevIteration<T> {
    /// Use the Chebyshev iteration as the *main solver* (Sec. III-A notes
    /// this is possible but slower than Krylov methods — asserted in the
    /// test suite): restarted `iterMax`-sweep cycles with a true-residual
    /// check between cycles (iterative refinement),
    ///
    /// ```text
    /// r = b − A x;  if ‖r‖ < tol stop;  x += CI(r)
    /// ```
    ///
    /// Convergence requires the iteration to approximate the *global*
    /// inverse, i.e. [`ChebyMode::Global`] on multi-rank worlds (the
    /// restricted modes are preconditioners, not solvers, once the domain
    /// is split). `x` holds the initial guess on entry.
    pub fn solve_monitored<D: Device, C: Communicator<T>>(
        &mut self,
        ctx: &RankCtx<T, D, C>,
        b: &Field<T>,
        x: &mut Field<T>,
        tol: f64,
        max_sweeps: usize,
    ) -> ChebyOutcome {
        use crate::kernels::{axpy_inplace, norm2_axpy, INFO_BICGS2, INFO_NORM2AXPY};
        use comm::ReduceOp;

        let mut residual = ctx.field();
        let mut correction = ctx.field();
        let mut sweeps = 0usize;
        let mut history = Vec::new();
        loop {
            // A x, staged in `correction` (refilled by the CI below)
            match self.mode {
                ChebyMode::Global if self.overlap => {
                    let pending = ctx.halo.begin(&ctx.dev, &ctx.comm, x);
                    apply_physical_bcs(&ctx.grid, x, &ctx.recorder, false);
                    ctx.lap
                        .apply_interior(&ctx.dev, stencil::INFO_APPLY, x, &mut correction);
                    ctx.halo.finish(&ctx.dev, &ctx.comm, pending, x);
                    ctx.lap
                        .apply_shell(&ctx.dev, stencil::INFO_APPLY, x, &mut correction);
                }
                ChebyMode::Global => {
                    ctx.halo.exchange(&ctx.dev, &ctx.comm, x);
                    apply_physical_bcs(&ctx.grid, x, &ctx.recorder, false);
                    ctx.lap
                        .apply(&ctx.dev, stencil::INFO_APPLY, x, &mut correction);
                }
                _ => {
                    apply_physical_bcs(&ctx.grid, x, &ctx.recorder, true);
                    ctx.lap
                        .apply(&ctx.dev, stencil::INFO_APPLY, x, &mut correction);
                }
            }
            // r = b − A x and ‖r‖² in one fused sweep — no per-cycle
            // temporary field, no separate copy/axpy/dot triple.
            let mut s = [norm2_axpy(
                &ctx.dev,
                INFO_NORM2AXPY,
                &ctx.grid,
                &mut residual,
                b,
                &correction,
            )];
            ctx.comm.all_reduce(&mut s, ReduceOp::Sum);
            let res = s[0].to_f64().max(0.0).sqrt();
            history.push(res);
            if res < tol {
                return ChebyOutcome {
                    converged: true,
                    sweeps,
                    residual_history: history,
                    final_residual: res,
                };
            }
            if sweeps >= max_sweeps || !res.is_finite() {
                return ChebyOutcome {
                    converged: false,
                    sweeps,
                    residual_history: history,
                    final_residual: res,
                };
            }
            // x += CI(r)
            sweeps += self.solve(ctx, &mut residual, &mut correction);
            axpy_inplace(&ctx.dev, INFO_BICGS2, &ctx.grid, x, &correction, T::ONE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{norm2_local, INFO_DOT};
    use accel::{Recorder, Serial};
    use blockgrid::{BcKind, BlockGrid, Decomp, GlobalGrid};
    use comm::SelfComm;
    use stencil::matrix::assemble_poisson;
    use stencil::INFO_APPLY;

    fn ctx_single(n: usize) -> RankCtx<f64, Serial, SelfComm<f64>> {
        let mut g = GlobalGrid::dirichlet([n, n, n], [0.2; 3], [0.0; 3]);
        g.bc[0] = [BcKind::Dirichlet, BcKind::Neumann];
        let grid = BlockGrid::new(g, Decomp::single(), 0);
        RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid)
    }

    fn rng_values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn parameters_follow_eq15() {
        let ctx = ctx_single(4);
        let cheb = ChebyshevIteration::new(
            &ctx,
            ChebyMode::Global,
            SpectralBounds {
                min: 2.0,
                max: 10.0,
            },
            3,
        );
        let (theta, delta, sigma) = cheb.parameters();
        assert_eq!(theta, 6.0);
        assert_eq!(delta, 4.0);
        assert_eq!(sigma, 1.5);
    }

    #[test]
    fn error_decreases_with_sweeps() {
        let ctx = ctx_single(5);
        let n = ctx.grid.global.unknowns();
        let x_true = rng_values(n, 9);
        // b = A x_true via dense reference
        let m = assemble_poisson(&ctx.lap.global_ops(), ctx.grid.global.h);
        let b_host = m.matvec(&x_true);
        let bounds = global_bounds(&ctx);
        let mut prev_err = f64::INFINITY;
        for sweeps in [2usize, 6, 16, 40] {
            let mut b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);
            let mut x = ctx.field();
            let mut cheb = ChebyshevIteration::new(&ctx, ChebyMode::Global, bounds, sweeps);
            cheb.solve(&ctx, &mut b, &mut x);
            let got = x.interior_to_host(&ctx.grid);
            let err: f64 = got
                .iter()
                .zip(&x_true)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(
                err < prev_err,
                "error must shrink: {err} !< {prev_err} at {sweeps}"
            );
            prev_err = err;
        }
        assert!(
            prev_err < 1e-2,
            "40 sweeps should be quite accurate: {prev_err}"
        );
    }

    #[test]
    fn residual_shrinks_after_preconditioning() {
        // One CI application must reduce ||b - A x|| vs x = 0 baseline.
        let ctx = ctx_single(6);
        let n = ctx.grid.global.unknowns();
        let b_host = rng_values(n, 21);
        let mut b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);
        let mut x = ctx.field();
        let bounds = global_bounds(&ctx);
        let mut cheb = ChebyshevIteration::new(&ctx, ChebyMode::Global, bounds, 24);
        cheb.solve(&ctx, &mut b, &mut x);
        // r = b - A x
        ctx.halo.exchange(&ctx.dev, &ctx.comm, &mut x);
        apply_physical_bcs(&ctx.grid, &mut x, &ctx.recorder, false);
        let mut ax = ctx.field();
        ctx.lap.apply(&ctx.dev, INFO_APPLY, &x, &mut ax);
        crate::kernels::axpy_inplace(&ctx.dev, INFO_DOT, &ctx.grid, &mut ax, &b, -1.0);
        let r2 = norm2_local(&ctx.dev, INFO_DOT, &ctx.grid, &ax);
        let b2 = norm2_local(&ctx.dev, INFO_DOT, &ctx.grid, &b);
        assert!(
            r2 < 0.25 * b2,
            "24 CI sweeps should cut the residual well below the RHS: {r2} vs {b2}"
        );
    }

    #[test]
    fn application_is_linear() {
        // Fixed (reduction-free) preconditioner => exactly linear operator.
        let ctx = ctx_single(4);
        let n = ctx.grid.global.unknowns();
        let u = rng_values(n, 1);
        let v = rng_values(n, 2);
        let (a, c) = (0.7, -1.3);
        let combo: Vec<f64> = u.iter().zip(&v).map(|(x, y)| a * x + c * y).collect();
        let apply = |rhs: &[f64]| -> Vec<f64> {
            let mut b = Field::from_interior(&ctx.dev, &ctx.grid, rhs);
            let mut x = ctx.field();
            let mut cheb =
                ChebyshevIteration::new(&ctx, ChebyMode::GlobalNoComm, global_bounds(&ctx), 8);
            cheb.solve(&ctx, &mut b, &mut x);
            x.interior_to_host(&ctx.grid)
        };
        let mu = apply(&u);
        let mv = apply(&v);
        let mc = apply(&combo);
        for i in 0..n {
            let expect = a * mu[i] + c * mv[i];
            assert!(
                (mc[i] - expect).abs() < 1e-10 * expect.abs().max(1.0),
                "linearity violated at {i}: {} vs {expect}",
                mc[i]
            );
        }
    }

    #[test]
    fn single_rank_modes_coincide() {
        // With one rank there are no interfaces: BJ, GNoComm and Global
        // restrict identically, so all three must agree bitwise.
        let ctx = ctx_single(4);
        let n = ctx.grid.global.unknowns();
        let rhs = rng_values(n, 77);
        let run = |mode: ChebyMode, bounds: SpectralBounds| {
            let mut b = Field::from_interior(&ctx.dev, &ctx.grid, &rhs);
            let mut x = ctx.field();
            let mut cheb = ChebyshevIteration::new(&ctx, mode, bounds, 10);
            cheb.solve(&ctx, &mut b, &mut x);
            x.interior_to_host(&ctx.grid)
        };
        let g = global_bounds(&ctx);
        let l = local_bounds(&ctx);
        assert_eq!(g, l, "single rank: local operator == global operator");
        let a = run(ChebyMode::Global, g);
        let b = run(ChebyMode::GlobalNoComm, g);
        let c = run(ChebyMode::BlockJacobi, l);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one sweep")]
    fn zero_iterations_rejected() {
        let ctx = ctx_single(3);
        let _ = ChebyshevIteration::new(
            &ctx,
            ChebyMode::Global,
            SpectralBounds { min: 1.0, max: 2.0 },
            0,
        );
    }
}

#[cfg(test)]
mod main_solver_tests {
    use super::*;
    use crate::bicgstab::{bicgstab_solve, Scope, SolveParams};
    use crate::ctx::Workspace;
    use crate::precond::IdentityPrec;
    use accel::{Recorder, Serial};
    use blockgrid::{BlockGrid, Decomp, Field, GlobalGrid};
    use comm::SelfComm;

    fn ctx() -> RankCtx<f64, Serial, SelfComm<f64>> {
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([8, 8, 8], [0.2; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid)
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.37).sin()).collect()
    }

    #[test]
    fn chebyshev_main_solver_converges() {
        let ctx = ctx();
        let b_host = rhs(512);
        let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);
        let mut x = ctx.field();
        let mut ci = ChebyshevIteration::new(&ctx, ChebyMode::Global, global_bounds(&ctx), 16);
        let out = ci.solve_monitored(&ctx, &b, &mut x, 1e-8 * bnorm, 100_000);
        assert!(out.converged, "{out:?}");
        assert!(out.final_residual < 1e-8 * bnorm);
        // residual history decreases monotonically for a fixed iteration
        for w in out.residual_history.windows(2) {
            assert!(
                w[1] < w[0],
                "restarted CI must contract: {:?}",
                out.residual_history
            );
        }
    }

    #[test]
    fn chebyshev_is_slower_than_bicgstab() {
        // the paper: "its convergence rate is known to be slower compared
        // to iterative Krylov methods" — compare matrix applications.
        let ctx = ctx();
        let b_host = rhs(512);
        let bnorm: f64 = b_host.iter().map(|v| v * v).sum::<f64>().sqrt();
        let tol = 1e-8 * bnorm;
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);

        let mut x = ctx.field();
        let mut ci = ChebyshevIteration::new(&ctx, ChebyMode::Global, global_bounds(&ctx), 16);
        let ci_out = ci.solve_monitored(&ctx, &b, &mut x, tol, 100_000);
        assert!(ci_out.converged);
        // CI matvecs: one per sweep plus one residual check per cycle
        let ci_matvecs = ci_out.sweeps + ci_out.residual_history.len();

        let mut x2 = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let bi_out = bicgstab_solve(
            &ctx,
            Scope::Global,
            &b,
            &mut x2,
            &mut IdentityPrec,
            &mut ws,
            &SolveParams {
                tol,
                max_iters: 10_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(bi_out.converged);
        let bi_matvecs = 2 * bi_out.iterations;
        assert!(
            ci_matvecs > bi_matvecs,
            "CI should need more operator applications: {ci_matvecs} vs {bi_matvecs}"
        );
    }

    #[test]
    fn main_solver_honours_sweep_budget() {
        let ctx = ctx();
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &rhs(512));
        let mut x = ctx.field();
        let mut ci = ChebyshevIteration::new(&ctx, ChebyMode::Global, global_bounds(&ctx), 16);
        let out = ci.solve_monitored(&ctx, &b, &mut x, 1e-300, 32);
        assert!(!out.converged);
        assert!(out.sweeps <= 48, "budget roughly honoured: {}", out.sweeps);
    }
}
