//! The preconditioner family of Table I.
//!
//! Bi-CGSTAB tolerates an *inexact* preconditioner, and its flexible
//! variant tolerates one that changes every iteration (Sec. III-A). The
//! paper builds five from two ingredients — an inner Bi-CGSTAB solve and
//! the Chebyshev iteration — crossed with global vs. block-restricted
//! operators:
//!
//! | name            | inner solver | operator        | comm-free | reduction-free | fixed |
//! |-----------------|--------------|-----------------|-----------|----------------|-------|
//! | `G(BiCGS)`      | Bi-CGSTAB    | global          | no        | no             | no    |
//! | `BJ(BiCGS)`     | Bi-CGSTAB    | block (Eq. 13)  | yes       | no             | no    |
//! | `BJ(CI)`        | Chebyshev    | block           | yes       | yes            | yes   |
//! | `G(CI)`         | Chebyshev    | global          | no        | yes            | yes   |
//! | `GNoComm(CI)`   | Chebyshev    | block, global λ | yes       | yes            | yes   |

use accel::{Device, Scalar};
use blockgrid::Field;
use comm::Communicator;
use stencil::SpectralBounds;

use crate::bicgstab::{bicgstab_solve, Scope, SolveParams};
use crate::cheby::{ChebyMode, ChebyshevIteration};
use crate::ctx::{RankCtx, Workspace};
use crate::kernels::{norm2_local, INFO_DOT};

/// The Table I characterisation of a preconditioner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrecTraits {
    /// Fixed operator (identical every application)?
    pub fixed: bool,
    /// Applies without inter-rank communication?
    pub comm_free: bool,
    /// Applies without scalar-product reductions?
    pub reduction_free: bool,
}

/// A (possibly inexact, possibly iteration-varying) preconditioner
/// `M⁻¹ ≈ A⁻¹` applied matrix-free.
pub trait Preconditioner<T: Scalar, D: Device, C: Communicator<T>>: Send {
    /// Compute `out ≈ M⁻¹ rhs`.
    ///
    /// Implementations may refresh `rhs`'s ghost layers (its interior is
    /// never modified). Returns the number of inner sweeps used by this
    /// application (0 for the identity).
    fn apply(&mut self, ctx: &RankCtx<T, D, C>, rhs: &mut Field<T>, out: &mut Field<T>) -> usize;

    /// Table I characterisation.
    fn traits(&self) -> PrecTraits;

    /// Short name for reports (e.g. `"GNoComm(CI)"`).
    fn name(&self) -> &'static str;
}

/// The identity preconditioner (`M = I`, plain Bi-CGSTAB).
pub struct IdentityPrec;

impl<T: Scalar, D: Device, C: Communicator<T>> Preconditioner<T, D, C> for IdentityPrec {
    fn apply(&mut self, _ctx: &RankCtx<T, D, C>, rhs: &mut Field<T>, out: &mut Field<T>) -> usize {
        out.copy_from(rhs);
        0
    }

    fn traits(&self) -> PrecTraits {
        PrecTraits {
            fixed: true,
            comm_free: true,
            reduction_free: true,
        }
    }

    fn name(&self) -> &'static str {
        "Identity"
    }
}

/// Chebyshev-iteration preconditioner (`BJ(CI)`, `G(CI)`, `GNoComm(CI)`).
pub struct ChebyPrecond<T> {
    cheby: ChebyshevIteration<T>,
    name: &'static str,
}

impl<T: Scalar> ChebyPrecond<T> {
    /// Build a Chebyshev preconditioner in the given mode with the given
    /// (already rescaled) bounds and sweep count.
    pub fn new<D: Device, C: Communicator<T>>(
        ctx: &RankCtx<T, D, C>,
        mode: ChebyMode,
        bounds: SpectralBounds,
        iterations: usize,
    ) -> Self {
        let name = match mode {
            ChebyMode::Global => "G(CI)",
            ChebyMode::GlobalNoComm => "GNoComm(CI)",
            ChebyMode::BlockJacobi => "BJ(CI)",
        };
        Self {
            cheby: ChebyshevIteration::new(ctx, mode, bounds, iterations),
            name,
        }
    }

    /// The underlying iteration.
    pub fn iteration(&self) -> &ChebyshevIteration<T> {
        &self.cheby
    }

    /// Enable or disable split-phase halo overlap (forwards to
    /// [`ChebyshevIteration::set_overlap`]; only `G(CI)` communicates).
    pub fn set_overlap(&mut self, on: bool) {
        self.cheby.set_overlap(on);
    }
}

impl<T: Scalar, D: Device, C: Communicator<T>> Preconditioner<T, D, C> for ChebyPrecond<T> {
    fn apply(&mut self, ctx: &RankCtx<T, D, C>, rhs: &mut Field<T>, out: &mut Field<T>) -> usize {
        self.cheby.solve(ctx, rhs, out)
    }

    fn traits(&self) -> PrecTraits {
        PrecTraits {
            fixed: true,
            comm_free: self.cheby.mode().comm_free(),
            reduction_free: true,
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Mixed-precision Chebyshev preconditioner: the same fixed polynomial
/// as [`ChebyPrecond`] with every sweep, state buffer and halo message
/// in `f32` under the `f64` outer recurrence. Still fixed (the rounding
/// is deterministic and identical every application), still
/// reduction-free; the preconditioner's streamed bytes and wire
/// payloads roughly halve.
pub struct MixedChebyPrecond {
    cheby: crate::mixed::MixedChebyshev,
    name: &'static str,
}

impl MixedChebyPrecond {
    /// Build a mixed-precision Chebyshev preconditioner in the given
    /// mode with the given (already rescaled) bounds and sweep count.
    pub fn new<T: Scalar, D: Device, C: Communicator<T>>(
        ctx: &RankCtx<T, D, C>,
        mode: ChebyMode,
        bounds: SpectralBounds,
        iterations: usize,
    ) -> Self {
        let name = match mode {
            ChebyMode::Global => "G(CI/f32)",
            ChebyMode::GlobalNoComm => "GNoComm(CI/f32)",
            ChebyMode::BlockJacobi => "BJ(CI/f32)",
        };
        Self {
            cheby: crate::mixed::MixedChebyshev::new(ctx, mode, bounds, iterations),
            name,
        }
    }

    /// The underlying single-precision iteration.
    pub fn iteration(&self) -> &crate::mixed::MixedChebyshev {
        &self.cheby
    }

    /// Enable or disable split-phase halo overlap (forwards to
    /// [`crate::mixed::MixedChebyshev::set_overlap`]).
    pub fn set_overlap(&mut self, on: bool) {
        self.cheby.set_overlap(on);
    }
}

impl<T: Scalar, D: Device, C: Communicator<T>> Preconditioner<T, D, C> for MixedChebyPrecond {
    fn apply(&mut self, ctx: &RankCtx<T, D, C>, rhs: &mut Field<T>, out: &mut Field<T>) -> usize {
        self.cheby.solve(ctx, rhs, out)
    }

    fn traits(&self) -> PrecTraits {
        PrecTraits {
            fixed: true,
            comm_free: self.cheby.mode().comm_free(),
            reduction_free: true,
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Inner-Bi-CGSTAB preconditioner (`G(BiCGS)` globally, `BJ(BiCGS)` on the
/// subdomain block). Inexact and iteration-varying — the *flexible*
/// Bi-CGSTAB setting of Vogel / Chen et al.
pub struct InnerBiCgsPrec<T> {
    scope: Scope,
    /// Relative tolerance on the inner residual.
    tol_rel: f64,
    max_iters: usize,
    overlap: bool,
    overlap_reduce: bool,
    fuse: bool,
    ws: Workspace<T>,
    name: &'static str,
}

impl<T: Scalar> InnerBiCgsPrec<T> {
    /// Build the inner-solver preconditioner.
    ///
    /// The paper's settings: `G(BiCGS)` uses `tol_rel = 1e-2`,
    /// `BJ(BiCGS)` uses `tol_rel = 1e-6`, both capped at 500 iterations.
    pub fn new<D: Device, C: Communicator<T>>(
        ctx: &RankCtx<T, D, C>,
        scope: Scope,
        tol_rel: f64,
        max_iters: usize,
    ) -> Self {
        let name = match scope {
            Scope::Global => "G(BiCGS)",
            Scope::Local => "BJ(BiCGS)",
        };
        Self {
            scope,
            tol_rel,
            max_iters,
            overlap: true,
            overlap_reduce: true,
            fuse: true,
            ws: Workspace::new(&ctx.dev, &ctx.grid),
            name,
        }
    }

    /// Enable or disable split-phase halo overlap in the inner solve
    /// (on by default; only the global scope communicates).
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Enable or disable split-phase batched reductions in the inner
    /// solve (on by default; only the global scope reduces).
    pub fn set_overlap_reduce(&mut self, on: bool) {
        self.overlap_reduce = on;
    }

    /// Enable or disable the fused memory-bound kernels of the inner
    /// solve (on by default; bitwise-transparent either way).
    pub fn set_fuse(&mut self, on: bool) {
        self.fuse = on;
    }
}

impl<T: Scalar, D: Device, C: Communicator<T>> Preconditioner<T, D, C> for InnerBiCgsPrec<T> {
    fn apply(&mut self, ctx: &RankCtx<T, D, C>, rhs: &mut Field<T>, out: &mut Field<T>) -> usize {
        // Scale the tolerance to the inner RHS (global or local norm
        // matching the scope of the inner reductions).
        let mut n2 = [norm2_local(&ctx.dev, INFO_DOT, &ctx.grid, rhs)];
        if self.scope == Scope::Global {
            ctx.comm.all_reduce(&mut n2, comm::ReduceOp::Sum);
        }
        let rhs_norm = n2[0].to_f64().max(0.0).sqrt();
        if rhs_norm == 0.0 {
            out.fill_zero();
            return 0;
        }
        out.fill_zero();
        let params = SolveParams {
            tol: self.tol_rel * rhs_norm,
            max_iters: self.max_iters,
            record_history: false,
            overlap_halo: self.overlap,
            overlap_reduce: self.overlap_reduce,
            fuse_kernels: self.fuse,
            ..Default::default()
        };
        let outcome = bicgstab_solve(
            ctx,
            self.scope,
            rhs,
            out,
            &mut IdentityPrec,
            &mut self.ws,
            &params,
        );
        outcome.iterations
    }

    fn traits(&self) -> PrecTraits {
        PrecTraits {
            fixed: false,
            comm_free: self.scope == Scope::Local,
            reduction_free: false,
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}
