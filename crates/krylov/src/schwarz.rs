//! Overlapping Restricted Additive Schwarz (RAS) preconditioner.
//!
//! Sec. III-A of the paper derives its Block-Jacobi preconditioner as the
//! zero-overlap limit of the additive Schwarz family and notes that "the
//! power of Schwarz methods relies on the overlapping between
//! subdomains" — then deliberately trades that power away to obtain a
//! communication-free preconditioner. This module implements the road not
//! taken: RAS with one layer of overlap,
//!
//! ```text
//! M⁻¹_RAS = Σ_s R̃_sᵀ (R'_s A R'_sᵀ)⁻¹ R'_s
//! ```
//!
//! where `R'_s` restricts to the *extended* subdomain (interior plus the
//! neighbours' first cell layer) and `R̃_s` is the non-overlapping
//! restriction (each rank keeps only its own cells of the local solve —
//! the "restricted" in RAS, which avoids the double-counting of plain
//! ASM). One halo exchange ships the overlap data, so the preconditioner
//! is *not* communication-free — exactly the trade the paper's Table I
//! tracks. The local extended problem is solved with the same fixed
//! Chebyshev iteration as `BJ(CI)`, so the preconditioner stays fixed and
//! reduction-free.

use accel::{Device, Scalar};
use blockgrid::{BlockGrid, Field};
use comm::Communicator;
use stencil::{apply_physical_bcs, spectrum, Laplacian};

use crate::ctx::RankCtx;
use crate::kernels::{INFO_CI1, INFO_CI2, INFO_SCALE};
use crate::precond::{PrecTraits, Preconditioner};

/// Restricted Additive Schwarz preconditioner with overlap 1, local
/// solves by Chebyshev iteration.
pub struct RasPrec<T> {
    /// The extended (overlap-1) subdomain view.
    ext_grid: BlockGrid,
    ext_lap: Laplacian,
    /// Overlap layers present per axis/side (1 at interfaces, 0 at
    /// physical faces).
    lo_overlap: [usize; 3],
    iterations: usize,
    theta: f64,
    delta: f64,
    sigma: f64,
    b_ext: Field<T>,
    z: Field<T>,
    y: Field<T>,
    w: Field<T>,
}

impl<T: Scalar> RasPrec<T> {
    /// Configure a RAS(1) preconditioner: `iterations` Chebyshev sweeps on
    /// the extended local block, spectral bounds from the extended
    /// operator rescaled by `(max_shrink, min_factor)` as in Sec. IV.
    pub fn new<D: Device, C: Communicator<T>>(
        ctx: &RankCtx<T, D, C>,
        iterations: usize,
        max_shrink: f64,
        min_factor: f64,
    ) -> Self {
        assert!(iterations >= 1, "RAS needs at least one local sweep");
        // Build the extended subdomain: one extra cell layer on every
        // interface face. The extended block is still a box; interface
        // ends stay Dirichlet-like truncations (now one layer further
        // out), physical ends keep their condition.
        let mut ext_grid = ctx.grid.clone();
        let mut lo_overlap = [0usize; 3];
        for (a, lo_a) in lo_overlap.iter_mut().enumerate() {
            let lo = usize::from(ctx.grid.boundary(a, 0).is_interface());
            let hi = usize::from(ctx.grid.boundary(a, 1).is_interface());
            ext_grid.local_n[a] += lo + hi;
            // interfaces never sit at the global edge, so offset >= 1 here
            ext_grid.offset[a] -= lo;
            *lo_a = lo;
        }
        let ext_lap = Laplacian::new(&ext_grid);
        let bounds = spectrum::kronecker_bounds(&ext_lap.local_ops(), ext_grid.global.h)
            .rescaled(max_shrink, min_factor);
        let theta = 0.5 * (bounds.max + bounds.min);
        let delta = 0.5 * (bounds.max - bounds.min);
        Self {
            b_ext: Field::zeros(&ctx.dev, &ext_grid),
            z: Field::zeros(&ctx.dev, &ext_grid),
            y: Field::zeros(&ctx.dev, &ext_grid),
            w: Field::zeros(&ctx.dev, &ext_grid),
            ext_grid,
            ext_lap,
            lo_overlap,
            iterations,
            theta,
            delta,
            sigma: theta / delta,
        }
    }

    /// The extended subdomain dims (interior + overlap).
    pub fn extended_local_n(&self) -> [usize; 3] {
        self.ext_grid.local_n
    }

    /// Gather `rhs` (whose interface ghosts hold the neighbours' overlap
    /// row) into the extended block's interior.
    fn gather_extended(&mut self, rhs: &Field<T>) {
        let en = self.ext_grid.local_n;
        self.b_ext.fill_zero();
        for k in 1..=en[2] {
            for j in 1..=en[1] {
                for i in 1..=en[0] {
                    // extended interior (i,j,k) <-> rhs padded coordinate
                    // (i - lo_overlap, ...): overlap cells map onto the
                    // rhs ghost layer filled by the halo exchange.
                    let src = [
                        i - self.lo_overlap[0],
                        j - self.lo_overlap[1],
                        k - self.lo_overlap[2],
                    ];
                    let v = rhs.as_slice()[rhs.idx(src[0], src[1], src[2])];
                    let dst = self.b_ext.idx(i, j, k);
                    self.b_ext.as_mut_slice()[dst] = v;
                }
            }
        }
    }

    /// Scatter the *owned* part of the extended solution into `out`
    /// (the restricted prolongation `R̃ᵀ` of RAS).
    fn scatter_owned<D: Device, C: Communicator<T>>(
        &self,
        ctx: &RankCtx<T, D, C>,
        out: &mut Field<T>,
    ) {
        let n = ctx.grid.local_n;
        for k in 1..=n[2] {
            for j in 1..=n[1] {
                for i in 1..=n[0] {
                    let src = self.y.idx(
                        i + self.lo_overlap[0],
                        j + self.lo_overlap[1],
                        k + self.lo_overlap[2],
                    );
                    let v = self.y.as_slice()[src];
                    let dst = out.idx(i, j, k);
                    out.as_mut_slice()[dst] = v;
                }
            }
        }
    }

    /// The Chebyshev recurrence of Algorithm 4 on the extended block
    /// (restricted ghosts — the truncation at the extended boundary).
    fn local_chebyshev<D: Device, C: Communicator<T>>(&mut self, ctx: &RankCtx<T, D, C>) {
        let (theta, delta, sigma) = (self.theta, self.delta, self.sigma);
        let mut rho_old = 1.0 / sigma;
        let mut rho_cur = 1.0 / (2.0 * sigma - rho_old);
        apply_physical_bcs(&self.ext_grid, &mut self.b_ext, &ctx.recorder, true);
        crate::kernels::scale(
            &ctx.dev,
            INFO_SCALE,
            &self.ext_grid,
            &mut self.z,
            &self.b_ext,
            T::from_f64(1.0 / theta),
        );
        let c1 = T::from_f64(4.0 * rho_cur / delta);
        let ca = T::from_f64(-2.0 * rho_cur / (delta * theta));
        let (b_ref, y_mut) = (&self.b_ext, &mut self.y);
        self.ext_lap
            .apply_combine(&ctx.dev, INFO_CI1, b_ref, y_mut, ca, &[(b_ref, c1)]);
        for _ in 2..=self.iterations {
            rho_old = rho_cur;
            rho_cur = 1.0 / (2.0 * sigma - rho_old);
            apply_physical_bcs(&self.ext_grid, &mut self.y, &ctx.recorder, true);
            let ca = T::from_f64(-2.0 * rho_cur / delta);
            let cy = T::from_f64(2.0 * sigma * rho_cur);
            let cb = T::from_f64(2.0 * rho_cur / delta);
            let cz = T::from_f64(-rho_cur * rho_old);
            let (y_ref, z_ref, b_ref, w_mut) = (&self.y, &self.z, &self.b_ext, &mut self.w);
            self.ext_lap.apply_combine(
                &ctx.dev,
                INFO_CI2,
                y_ref,
                w_mut,
                ca,
                &[(y_ref, cy), (b_ref, cb), (z_ref, cz)],
            );
            self.z.swap(&mut self.y);
            self.y.swap(&mut self.w);
        }
    }
}

impl<T: Scalar, D: Device, C: Communicator<T>> Preconditioner<T, D, C> for RasPrec<T> {
    fn apply(&mut self, ctx: &RankCtx<T, D, C>, rhs: &mut Field<T>, out: &mut Field<T>) -> usize {
        // one halo exchange ships the neighbours' overlap rows
        ctx.recorder
            .stage("MPI-RAS", || ctx.halo.exchange(&ctx.dev, &ctx.comm, rhs));
        self.gather_extended(rhs);
        self.local_chebyshev(ctx);
        out.fill_zero();
        self.scatter_owned(ctx, out);
        self.iterations
    }

    fn traits(&self) -> PrecTraits {
        PrecTraits {
            fixed: true,
            comm_free: false,
            reduction_free: true,
        }
    }

    fn name(&self) -> &'static str {
        "RAS1(CI)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::{bicgstab_solve, Scope, SolveParams};
    use crate::cheby::{local_bounds, ChebyMode};
    use crate::ctx::Workspace;
    use crate::precond::ChebyPrecond;
    use accel::{Recorder, Serial};
    use blockgrid::{Decomp, GlobalGrid};
    use comm::{run_ranks, ReduceOrder, SelfComm, ThreadComm};

    fn rng_values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn single_rank_ras_equals_block_jacobi() {
        // no interfaces => no overlap => RAS reduces to BJ(CI) exactly
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([8, 8, 8], [0.2; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        let ctx: RankCtx<f64, _, SelfComm<f64>> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        let mut ras = RasPrec::new(&ctx, 12, 1e-4, 10.0);
        assert_eq!(ras.extended_local_n(), [8, 8, 8]);
        let bounds = local_bounds(&ctx).rescaled(1e-4, 10.0);
        let mut bj = ChebyPrecond::new(&ctx, ChebyMode::BlockJacobi, bounds, 12);
        let rhs_host = rng_values(512, 3);
        let mut r1 = Field::from_interior(&ctx.dev, &ctx.grid, &rhs_host);
        let mut r2 = Field::from_interior(&ctx.dev, &ctx.grid, &rhs_host);
        let mut o1 = ctx.field();
        let mut o2 = ctx.field();
        Preconditioner::apply(&mut ras, &ctx, &mut r1, &mut o1);
        Preconditioner::apply(&mut bj, &ctx, &mut r2, &mut o2);
        assert_eq!(
            o1.interior_to_host(&ctx.grid),
            o2.interior_to_host(&ctx.grid),
            "zero overlap must reduce RAS to BJ(CI)"
        );
    }

    #[test]
    fn extended_block_grows_at_interfaces_only() {
        let mut g = GlobalGrid::dirichlet([8, 8, 8], [0.2; 3], [0.0; 3]);
        g.bc[0] = [blockgrid::BcKind::Dirichlet, blockgrid::BcKind::Neumann];
        run_ranks::<f64, _, _>(2, ReduceOrder::RankOrder, move |comm| {
            let rank = comm.rank();
            let grid = BlockGrid::new(g.clone(), Decomp::new([2, 1, 1]), rank);
            let ctx: RankCtx<f64, _, ThreadComm<f64>> =
                RankCtx::new(Serial::new(Recorder::disabled()), comm, grid);
            let ras = RasPrec::<f64>::new(&ctx, 4, 1e-4, 10.0);
            // 4 local cells + 1 overlap layer on the single interface
            assert_eq!(ras.extended_local_n(), [5, 8, 8], "rank {rank}");
        });
    }

    fn solve_iterations(use_ras: bool) -> usize {
        let decomp = Decomp::new([2, 2, 2]);
        let results = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
            let grid = BlockGrid::new(
                GlobalGrid::dirichlet([16, 16, 16], [0.2; 3], [0.0; 3]),
                decomp,
                comm.rank(),
            );
            let ctx: RankCtx<f64, _, ThreadComm<f64>> =
                RankCtx::new(Serial::new(Recorder::disabled()), comm, grid);
            let b_host = rng_values(8 * 8 * 8, 11 + ctx.grid.rank as u64);
            let b = Field::from_interior(&ctx.dev, &ctx.grid, &b_host);
            let mut x = ctx.field();
            let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
            let params = SolveParams {
                tol: 1e-9,
                max_iters: 5_000,
                record_history: false,
                ..Default::default()
            };
            let out = if use_ras {
                let mut prec = RasPrec::new(&ctx, 10, 1e-4, 10.0);
                bicgstab_solve(&ctx, Scope::Global, &b, &mut x, &mut prec, &mut ws, &params)
            } else {
                let bounds = local_bounds(&ctx).rescaled(1e-4, 10.0);
                let mut prec = ChebyPrecond::new(&ctx, ChebyMode::BlockJacobi, bounds, 10);
                bicgstab_solve(&ctx, Scope::Global, &b, &mut x, &mut prec, &mut ws, &params)
            };
            assert!(out.converged, "{out:?}");
            out.iterations
        });
        assert!(results.iter().all(|&i| i == results[0]));
        results[0]
    }

    #[test]
    fn overlap_strengthens_the_preconditioner() {
        // the Schwarz-theory claim the paper cites: overlap reduces outer
        // iterations relative to the non-overlapping (BJ) limit
        let bj = solve_iterations(false);
        let ras = solve_iterations(true);
        assert!(
            ras <= bj,
            "RAS(1) must not need more outer iterations than BJ: {ras} vs {bj}"
        );
    }

    #[test]
    fn ras_traits_reflect_the_communication_trade() {
        let grid = BlockGrid::new(
            GlobalGrid::dirichlet([4, 4, 4], [0.2; 3], [0.0; 3]),
            Decomp::single(),
            0,
        );
        let ctx: RankCtx<f64, _, SelfComm<f64>> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        // tiny 4^3 block: x10 min-rescaling would collapse the interval
        let ras = RasPrec::<f64>::new(&ctx, 2, 1e-4, 1.0);
        let t = Preconditioner::<f64, Serial, SelfComm<f64>>::traits(&ras);
        assert!(t.fixed && t.reduction_free);
        assert!(
            !t.comm_free,
            "overlap costs communication — the paper's point"
        );
    }
}
