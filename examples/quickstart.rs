//! Quickstart: solve the paper's Poisson problem on one rank.
//!
//! This is the smallest end-to-end use of the library: build the Sec. IV
//! test problem, pick a back-end and the paper's best solver
//! (BiCGS-GNoComm(CI)), solve to the paper's 1e-10 relative tolerance,
//! and check against the manufactured exact solution.
//!
//! Run: `cargo run --release --example quickstart [-- nodes [device]]`
//! e.g. `cargo run --release --example quickstart -- 64 mi250x`

use accel::{AnyDevice, Recorder};
use blockgrid::Decomp;
use comm::SelfComm;
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().map_or(48, |a| a.parse().expect("nodes"));
    let device_spec = args.next().unwrap_or_else(|| "serial".to_owned());

    // 1. the continuous problem of Sec. IV at the requested resolution
    let problem = paper_problem(nodes);
    println!(
        "problem: -Laplacian(phi) = sin x + cos y + 3 sin z - 2yz + 2 on {:?}..{:?}, {nodes}^3 nodes",
        problem.lo, problem.hi
    );

    // 2. a device (the alpaka-style back-end choice) and a 1-rank world
    let device = AnyDevice::from_spec(&device_spec, Recorder::disabled()).expect("device spec");
    let comm = SelfComm::<f64>::default();

    // 3. assemble: discretise, build the RHS with boundary lifting,
    //    normalise it, offload to the device
    let mut solver: PoissonSolver<f64, _, _> =
        PoissonSolver::new(problem, Decomp::single(), device, comm);

    // 4. solve with the paper's fastest configuration
    let outcome = solver.solve(
        SolverKind::BiCgsGNoCommCi,
        &SolverOptions {
            eig_min_factor: 10.0,
            ..Default::default()
        },
        &SolveParams {
            tol: 1e-10,
            max_iters: 10_000,
            record_history: true,
            ..Default::default()
        },
    );
    println!(
        "solver: {} -> {} outer iterations, relative residual {:.2e}",
        SolverKind::BiCgsGNoCommCi,
        outcome.iterations,
        outcome.final_residual
    );
    assert!(outcome.converged, "solver did not converge: {outcome:?}");

    // 5. compare with the manufactured exact solution
    let (l2, linf) = solver.error_vs_exact();
    println!("error vs exact solution: relative L2 {l2:.3e}, max {linf:.3e}");
    println!("(second-order discretisation: halving the spacing quarters this error)");

    // residual history, the way Figs. 2-4 plot it
    println!("\nresidual history:");
    for (i, r) in outcome.residual_history.iter().enumerate() {
        println!("  iter {i:>3}  residual {r:.6e}");
    }
}
