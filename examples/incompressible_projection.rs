//! Incompressible-flow pressure projection (Chorin splitting).
//!
//! The paper's other motivating application (Sec. I) is the pressure
//! Poisson equation of incompressible flow solvers. This example runs one
//! projection step on 4 ranks:
//!
//! 1. build a provisional velocity `u* = u_sol + grad(psi)` where `u_sol`
//!    is divergence-free and `psi` is a known scalar — so the exact
//!    pressure of the projection is `psi` itself;
//! 2. solve the pressure Poisson equation `-Laplacian(p) = -div(u*)`;
//! 3. correct `u = u* - grad(p)` and verify the divergence drops and the
//!    corrected field matches `u_sol` to discretisation accuracy.
//!
//! Run: `cargo run --release --example incompressible_projection [-- nodes]`

use accel::{Recorder, Serial};
use blockgrid::Decomp;
use comm::{run_ranks, ReduceOrder};
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{unit_cube_dirichlet, PoissonSolver};
use std::f64::consts::PI;

/// Divergence-free base flow (a Beltrami-like field).
fn u_sol(x: f64, y: f64, z: f64) -> [f64; 3] {
    [(PI * y).sin(), (PI * z).sin(), (PI * x).sin()]
}

/// The projected-out potential and its gradient.
fn psi(x: f64, y: f64, z: f64) -> f64 {
    (PI * x).sin() * (PI * y).sin() * (PI * z).sin()
}

fn grad_psi(x: f64, y: f64, z: f64) -> [f64; 3] {
    [
        PI * (PI * x).cos() * (PI * y).sin() * (PI * z).sin(),
        PI * (PI * x).sin() * (PI * y).cos() * (PI * z).sin(),
        PI * (PI * x).sin() * (PI * y).sin() * (PI * z).cos(),
    ]
}

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map_or(33, |a| a.parse().expect("nodes"));

    // -Laplacian(psi) = 3 pi^2 psi and psi = 0 on the walls, so the
    // pressure Poisson problem for u* = u_sol + grad(psi) is exactly the
    // unit-cube Dirichlet problem from the library.
    let problem = unit_cube_dirichlet(nodes);
    println!("pressure projection on a {nodes}^3 mesh, 4 ranks");

    let decomp = Decomp::new([2, 2, 1]);
    let results = run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, move |comm| {
        let dev = Serial::new(Recorder::disabled());
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(problem.clone(), decomp, dev, comm);
        let outcome = solver.solve(
            SolverKind::BiCgsBjCi, // Block-Jacobi Chebyshev this time
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-11,
                max_iters: 10_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(outcome.converged, "{outcome:?}");
        let grid = solver.grid().clone();
        (
            outcome.iterations,
            solver.solution_local(),
            grid.offset,
            grid.local_n,
            grid.global.clone(),
        )
    });
    println!(
        "pressure solve converged in {} outer iterations",
        results[0].0
    );

    // gather p onto the global unknown grid
    let global = &results[0].4;
    let gn = global.n;
    let mut p = vec![0.0; gn[0] * gn[1] * gn[2]];
    for (_, local, off, ln, _) in &results {
        let mut idx = 0;
        for k in 0..ln[2] {
            for j in 0..ln[1] {
                for i in 0..ln[0] {
                    p[(off[0] + i) + gn[0] * ((off[1] + j) + gn[1] * (off[2] + k))] = local[idx];
                    idx += 1;
                }
            }
        }
    }

    // helper: pressure with Dirichlet boundary values (zero) outside
    let p_at = |i: isize, j: isize, k: isize| -> f64 {
        if i < 0 || j < 0 || k < 0 {
            return 0.0;
        }
        let (i, j, k) = (i as usize, j as usize, k as usize);
        if i >= gn[0] || j >= gn[1] || k >= gn[2] {
            0.0
        } else {
            p[i + gn[0] * (j + gn[1] * k)]
        }
    };
    let h = global.h;

    // correct the velocity at interior nodes and measure the error and
    // the divergence before/after (central differences)
    let coord = |a: usize, i: usize| global.coord(a, i);
    let mut err_corr: f64 = 0.0;
    let mut err_star: f64 = 0.0;
    let mut div_before: f64 = 0.0;
    let mut div_after: f64 = 0.0;
    let mut count = 0usize;
    for k in 1..gn[2] - 1 {
        for j in 1..gn[1] - 1 {
            for i in 1..gn[0] - 1 {
                let (x, y, z) = (coord(0, i), coord(1, j), coord(2, k));
                let base = u_sol(x, y, z);
                let gp_exact = grad_psi(x, y, z);
                // discrete pressure gradient
                let gp = [
                    (p_at(i as isize + 1, j as isize, k as isize)
                        - p_at(i as isize - 1, j as isize, k as isize))
                        / (2.0 * h[0]),
                    (p_at(i as isize, j as isize + 1, k as isize)
                        - p_at(i as isize, j as isize - 1, k as isize))
                        / (2.0 * h[1]),
                    (p_at(i as isize, j as isize, k as isize + 1)
                        - p_at(i as isize, j as isize, k as isize - 1))
                        / (2.0 * h[2]),
                ];
                for a in 0..3 {
                    let star = base[a] + gp_exact[a];
                    let corrected = star - gp[a];
                    err_star += (star - base[a]).powi(2);
                    err_corr += (corrected - base[a]).powi(2);
                }
                // analytic divergences at this node (u_sol is solenoidal)
                div_before += (3.0 * PI * PI * psi(x, y, z)).powi(2); // div u* = Lap psi
                let lap_p_discrete = (p_at(i as isize + 1, j as isize, k as isize)
                    + p_at(i as isize - 1, j as isize, k as isize)
                    - 2.0 * p_at(i as isize, j as isize, k as isize))
                    / (h[0] * h[0])
                    + (p_at(i as isize, j as isize + 1, k as isize)
                        + p_at(i as isize, j as isize - 1, k as isize)
                        - 2.0 * p_at(i as isize, j as isize, k as isize))
                        / (h[1] * h[1])
                    + (p_at(i as isize, j as isize, k as isize + 1)
                        + p_at(i as isize, j as isize, k as isize - 1)
                        - 2.0 * p_at(i as isize, j as isize, k as isize))
                        / (h[2] * h[2]);
                // residual divergence after correction (discrete)
                div_after += (-3.0 * PI * PI * psi(x, y, z) - lap_p_discrete).powi(2);
                count += 1;
            }
        }
    }
    let rms = |v: f64| (v / count as f64).sqrt();
    println!("\nvelocity error vs the divergence-free target (RMS):");
    println!("  before projection: {:.4e}", rms(err_star / 3.0));
    println!("  after projection:  {:.4e}", rms(err_corr / 3.0));
    println!("divergence (RMS):");
    println!("  before projection: {:.4e}", rms(div_before));
    println!("  after projection:  {:.4e}", rms(div_after));

    let improvement = rms(err_star / 3.0) / rms(err_corr / 3.0);
    println!("\nprojection reduced the velocity error {improvement:.0}x");
    assert!(
        improvement > 20.0,
        "projection must remove most of grad(psi)"
    );
    assert!(
        rms(div_after) < 0.05 * rms(div_before),
        "divergence must collapse"
    );
}
