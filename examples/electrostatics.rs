//! Electrostatics: potential of charge blobs in a grounded box.
//!
//! The paper motivates Poisson solvers with electrostatics for molecular
//! dynamics and plasma simulation (Sec. I). This example computes the
//! electrostatic potential of a set of Gaussian charge blobs inside a
//! grounded (phi = 0) box, distributed over 8 MPI-style ranks:
//!
//!   -Laplacian(phi) = rho / eps0,   phi = 0 on all walls,
//!
//! then reports the potential at probe points and verifies the expected
//! mirror symmetry of a symmetric charge configuration.
//!
//! Run: `cargo run --release --example electrostatics [-- nodes]`

use std::sync::Arc;

use accel::{Recorder, Serial};
use blockgrid::{BcKind, Decomp};
use comm::{run_ranks, Communicator, ReduceOrder};
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{PoissonProblem, PoissonSolver};

/// A Gaussian charge blob.
#[derive(Clone, Copy)]
struct Charge {
    q: f64,
    center: [f64; 3],
    sigma: f64,
}

impl Charge {
    fn density(&self, x: f64, y: f64, z: f64) -> f64 {
        let d2 = (x - self.center[0]).powi(2)
            + (y - self.center[1]).powi(2)
            + (z - self.center[2]).powi(2);
        let s2 = self.sigma * self.sigma;
        self.q * (-0.5 * d2 / s2).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt()).powi(3)
    }
}

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .map_or(33, |a| a.parse().expect("nodes"));

    // a dipole-like pair, mirror-symmetric about the x = 0.5 plane,
    // plus a weaker off-centre blob
    let charges = vec![
        Charge {
            q: 1.0,
            center: [0.3, 0.5, 0.5],
            sigma: 0.06,
        },
        Charge {
            q: 1.0,
            center: [0.7, 0.5, 0.5],
            sigma: 0.06,
        },
        Charge {
            q: -0.5,
            center: [0.5, 0.25, 0.75],
            sigma: 0.08,
        },
    ];
    let rho = {
        let charges = charges.clone();
        Arc::new(move |x: f64, y: f64, z: f64| {
            charges.iter().map(|c| c.density(x, y, z)).sum::<f64>()
        })
    };

    let problem = PoissonProblem {
        lo: [0.0; 3],
        hi: [1.0; 3],
        nodes: [nodes; 3],
        bc: [[BcKind::Dirichlet; 2]; 3], // grounded walls
        rhs: rho,
        dirichlet: Arc::new(|_, _, _| 0.0),
        neumann_dx: [
            Arc::new(|_, _, _| 0.0),
            Arc::new(|_, _, _| 0.0),
            Arc::new(|_, _, _| 0.0),
        ],
        exact: None,
    };

    println!(
        "electrostatics: {} charge blobs in a grounded unit box, {nodes}^3 nodes, 8 ranks",
        charges.len()
    );

    let decomp = Decomp::new([2, 2, 2]);
    let results = run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, move |comm| {
        let rank = comm.rank();
        let dev = Serial::new(Recorder::disabled());
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(problem.clone(), decomp, dev, comm);
        let outcome = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-10,
                max_iters: 10_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(outcome.converged, "rank {rank}: {outcome:?}");
        // each rank returns its subdomain solution plus placement metadata
        let grid = solver.grid().clone();
        (
            outcome.iterations,
            solver.solution_local(),
            grid.offset,
            grid.local_n,
            grid.global.clone(),
        )
    });

    let (iterations, _, _, _, global) = &results[0];
    println!("converged in {iterations} outer iterations on every rank");

    // gather the distributed solution into a global array
    let gn = global.n;
    let mut phi = vec![0.0; gn[0] * gn[1] * gn[2]];
    for (_, local, off, ln, _) in &results {
        let mut idx = 0;
        for k in 0..ln[2] {
            for j in 0..ln[1] {
                for i in 0..ln[0] {
                    let g = (off[0] + i) + gn[0] * ((off[1] + j) + gn[1] * (off[2] + k));
                    phi[g] = local[idx];
                    idx += 1;
                }
            }
        }
    }

    // probe the potential along the dipole axis
    let at = |fx: f64, fy: f64, fz: f64| -> f64 {
        let i = ((fx - global.origin[0]) / global.h[0]).round() as usize;
        let j = ((fy - global.origin[1]) / global.h[1]).round() as usize;
        let k = ((fz - global.origin[2]) / global.h[2]).round() as usize;
        phi[i + gn[0] * (j + gn[1] * k)]
    };
    println!("\npotential along the dipole axis (y = z = 0.5):");
    for fx in [0.1, 0.3, 0.5, 0.7, 0.9] {
        println!("  phi({fx:.1}, 0.5, 0.5) = {:+.6e}", at(fx, 0.5, 0.5));
    }

    // the two positive blobs are mirror images about x = 0.5
    let left = at(0.3, 0.5, 0.5);
    let right = at(0.7, 0.5, 0.5);
    let asym = (left - right).abs() / left.abs().max(right.abs());
    println!("\nmirror-symmetry check at the blob centres: relative asymmetry {asym:.2e}");
    assert!(
        asym < 1e-6,
        "symmetric charges must give a symmetric potential"
    );

    // both blob centres sit in a positive potential well
    assert!(left > 0.0 && right > 0.0);
    // far corner is near ground
    let corner = at(0.06, 0.06, 0.06);
    println!("potential near a grounded corner: {corner:+.3e}");
    assert!(
        corner.abs() < left.abs() * 0.2,
        "walls must pull the potential to ground"
    );
}
