//! Backend portability: one kernel source, every back-end.
//!
//! The paper's central software claim is that alpaka lets the same solver
//! source run on CPUs and on NVIDIA/AMD GPUs by changing a single type
//! alias. This example demonstrates the Rust equivalent:
//!
//! * a *user-defined* kernel written once against the [`accel::Device`]
//!   trait, executed on the serial CPU, threaded CPU and both simulated
//!   GPU back-ends with bitwise-identical element-wise results;
//! * the floating-point *reduction order* differing per back-end — the
//!   mechanism behind the paper's CPU-vs-GPU iteration-count differences;
//! * the full distributed Poisson solver running unchanged on every
//!   back-end, in both f64 and f32 (the paper's `T_data` template).
//!
//! Run: `cargo run --release --example backend_portability`

use accel::{AnyDevice, Device, KernelInfo, Recorder, RowMap, Scalar};
use blockgrid::Decomp;
use comm::SelfComm;
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};

/// A user kernel written once against the device concept: fused
/// "SAXPY + squared norm" (the shape of the solver's vector kernels).
///
/// The vector is shaped into rows — the device's unit of parallelism —
/// so the per-row partial sums are combined by each back-end's own
/// reduction policy (row order / chunk order / block tree).
fn fused_axpy_norm<T: Scalar, D: Device>(dev: &D, a: T, x: &[T], y: &mut [T], row_len: usize) -> T {
    assert_eq!(y.len() % row_len, 0);
    let rows = y.len() / row_len;
    let map = RowMap {
        base: 0,
        len: row_len,
        ny: rows,
        nz: 1,
        sy: row_len,
        sz: y.len(),
    };
    let info = KernelInfo::new("user_axpy_norm", 24, 3);
    let [norm2] = dev.launch_rows_reduce(info, map, y, |j, _, row| {
        let xs = &x[j * row_len..(j + 1) * row_len];
        let mut acc = T::ZERO;
        for (yi, xi) in row.iter_mut().zip(xs) {
            *yi = a.mul_add(*xi, *yi);
            acc += *yi * *yi;
        }
        [acc]
    });
    norm2
}

fn backends() -> Vec<AnyDevice> {
    ["serial", "threads:4", "mi250x", "h100"]
        .iter()
        .map(|s| AnyDevice::from_spec(s, Recorder::disabled()).unwrap())
        .collect()
}

fn main() {
    // --- 1. one kernel, four back-ends -------------------------------
    println!("1) user kernel on every back-end");
    let n = 1 << 16;
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    let y0: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.11).cos()).collect();

    let mut elementwise: Vec<Vec<f64>> = Vec::new();
    let mut norms: Vec<f64> = Vec::new();
    for dev in backends() {
        let mut y = y0.clone();
        let norm2 = fused_axpy_norm(&dev, 0.5, &x, &mut y, 256);
        println!("   {:<18} norm2 = {:.17e}", dev.name(), norm2);
        elementwise.push(y);
        norms.push(norm2);
    }
    // element-wise results are bitwise identical...
    for other in &elementwise[1..] {
        assert_eq!(
            &elementwise[0], other,
            "element-wise results must match exactly"
        );
    }
    println!("   element-wise outputs: bitwise identical on all back-ends");
    // ...but the fused reduction is grouped differently per back-end
    let distinct = norms
        .iter()
        .map(|v| v.to_bits())
        .collect::<std::collections::HashSet<_>>()
        .len();
    println!(
        "   reduction results: {distinct} distinct roundings across 4 back-ends \
         (max spread {:.2e})",
        norms.iter().cloned().fold(f64::MIN, f64::max)
            - norms.iter().cloned().fold(f64::MAX, f64::min)
    );
    assert!(
        distinct > 1,
        "back-ends must exhibit distinct reduction orders"
    );

    // --- 2. the full solver, unchanged, per back-end ------------------
    println!("\n2) full Poisson solve on every back-end (33^3 mesh, 1 rank)");
    for dev in backends() {
        let name = dev.name();
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            paper_problem(33),
            Decomp::single(),
            dev,
            SelfComm::default(),
        );
        let out = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams::default(),
        );
        let (l2, _) = solver.error_vs_exact();
        println!(
            "   {:<18} {} iterations, residual {:.2e}, L2 error vs exact {:.2e}",
            name, out.iterations, out.final_residual, l2
        );
        assert!(out.converged);
    }

    // --- 3. precision portability (the paper's T_data template) -------
    println!("\n3) same solver in single precision");
    let dev = AnyDevice::from_spec("mi250x", Recorder::disabled()).unwrap();
    let mut solver: PoissonSolver<f32, _, _> = PoissonSolver::new(
        paper_problem(33),
        Decomp::single(),
        dev,
        SelfComm::default(),
    );
    let out = solver.solve(
        SolverKind::BiCgsGNoCommCi,
        &SolverOptions {
            eig_min_factor: 10.0,
            ..Default::default()
        },
        &SolveParams {
            tol: 5e-5,
            max_iters: 10_000,
            record_history: false,
            ..Default::default()
        },
    );
    println!(
        "   f32 on simgpu-mi250x: {} iterations, residual {:.2e}",
        out.iterations, out.final_residual
    );
    assert!(
        out.converged,
        "f32 solve must reach single-precision tolerance"
    );
}
