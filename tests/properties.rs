//! Property-based integration tests (proptest).
//!
//! Randomised checks of the core invariants across grid shapes, boundary
//! conditions, decompositions and data:
//!
//! * the distributed matrix-free stencil equals the dense operator,
//! * halo exchange delivers exactly the neighbour faces,
//! * collectives reduce exactly (deterministic order),
//! * Bi-CGSTAB solutions satisfy the linear system to the requested
//!   tolerance (verified independently against the dense operator),
//! * the Chebyshev preconditioner is a linear fixed operator.

use accel::{Recorder, Serial};
use blockgrid::{BcKind, BlockGrid, Decomp, Field, GlobalGrid, HaloExchange};
use comm::{run_ranks, Communicator, ReduceOp, ReduceOrder, SelfComm};
use krylov::{
    bicgstab_solve, global_bounds, ChebyMode, ChebyshevIteration, IdentityPrec, RankCtx, Scope,
    SolveParams, Workspace,
};
use proptest::prelude::*;
use stencil::matrix::assemble_poisson;
use stencil::{apply_physical_bcs, Laplacian, INFO_APPLY};

fn bc_strategy() -> impl Strategy<Value = BcKind> {
    prop_oneof![Just(BcKind::Dirichlet), Just(BcKind::Neumann)]
}

/// A random mixed-BC assignment with at least one Dirichlet face per axis
/// (keeps the operator comfortably nonsingular for solver properties).
fn bcs_strategy() -> impl Strategy<Value = [[BcKind; 2]; 3]> {
    [
        (bc_strategy(), bc_strategy()),
        (bc_strategy(), bc_strategy()),
        (bc_strategy(), bc_strategy()),
    ]
    .prop_map(|axes| {
        let mut bc = [[BcKind::Dirichlet; 2]; 3];
        for (a, (lo, hi)) in axes.into_iter().enumerate() {
            bc[a] = [lo, hi];
            if bc[a] == [BcKind::Neumann, BcKind::Neumann] {
                bc[a][1] = BcKind::Dirichlet; // avoid the singular pure-Neumann axis
            }
        }
        bc
    })
}

fn grid_strategy() -> impl Strategy<Value = (GlobalGrid, Vec<f64>)> {
    (
        (2usize..=5, 2usize..=5, 2usize..=5),
        bcs_strategy(),
        (1u64..u64::MAX),
    )
        .prop_map(|((nx, ny, nz), bc, seed)| {
            let mut g = GlobalGrid::dirichlet([nx, ny, nz], [0.3, 0.45, 0.6], [0.0; 3]);
            g.bc = bc;
            let n = g.unknowns();
            let mut state = seed;
            let vals = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                })
                .collect();
            (g, vals)
        })
}

fn decomp_strategy() -> impl Strategy<Value = [usize; 3]> {
    prop_oneof![
        Just([1, 1, 1]),
        Just([2, 1, 1]),
        Just([1, 2, 1]),
        Just([1, 1, 2]),
        Just([2, 2, 1]),
        Just([2, 1, 2]),
        Just([2, 2, 2]),
    ]
}

/// Scatter a global vector onto a rank's interior.
fn scatter(global: &GlobalGrid, grid: &BlockGrid, v: &[f64]) -> Vec<f64> {
    let n = grid.local_n;
    let gn = global.n;
    let mut out = Vec::with_capacity(n[0] * n[1] * n[2]);
    for k in 0..n[2] {
        for j in 0..n[1] {
            for i in 0..n[0] {
                out.push(
                    v[(grid.offset[0] + i)
                        + gn[0] * ((grid.offset[1] + j) + gn[1] * (grid.offset[2] + k))],
                );
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_stencil_equals_dense_operator(
        (global, input) in grid_strategy(),
        decomp in decomp_strategy(),
    ) {
        // skip decompositions finer than the grid
        for (d, n) in decomp.iter().zip(&global.n) {
            prop_assume!(d <= n);
        }
        // thin Neumann subdomains are rejected by design; skip them
        let d = Decomp::new(decomp);
        let mut feasible = true;
        for rank in 0..d.ranks() {
            let bg = BlockGrid::new(global.clone(), d, rank);
            for a in 0..3 {
                let neumann = (0..2).any(|s| {
                    matches!(bg.boundary(a, s), blockgrid::LocalBoundary::Physical(BcKind::Neumann))
                });
                if neumann && bg.local_n[a] < 2 {
                    feasible = false;
                }
            }
        }
        prop_assume!(feasible);

        // dense reference on the single-rank operator
        let ref_grid = BlockGrid::new(global.clone(), Decomp::single(), 0);
        let lap = Laplacian::new(&ref_grid);
        let dense = assemble_poisson(&lap.global_ops(), global.h);
        let expect = dense.matvec(&input);

        let g2 = global.clone();
        let inp = input.clone();
        let results = run_ranks::<f64, _, _>(d.ranks(), ReduceOrder::RankOrder, move |comm| {
            let grid = BlockGrid::new(g2.clone(), d, comm.rank());
            let dev = Serial::new(Recorder::disabled());
            let local = scatter(&g2, &grid, &inp);
            let mut u = Field::from_interior(&dev, &grid, &local);
            HaloExchange::new(&grid).exchange(&dev, &comm, &mut u);
            apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
            let lap = Laplacian::new(&grid);
            let mut w = Field::zeros(&dev, &grid);
            lap.apply(&dev, INFO_APPLY, &u, &mut w);
            (w.interior_to_host(&grid), grid.offset, grid.local_n)
        });

        let gn = global.n;
        for (local, off, ln) in &results {
            let mut idx = 0;
            for k in 0..ln[2] {
                for j in 0..ln[1] {
                    for i in 0..ln[0] {
                        let g = (off[0] + i) + gn[0] * ((off[1] + j) + gn[1] * (off[2] + k));
                        let e = expect[g];
                        prop_assert!(
                            (local[idx] - e).abs() < 1e-10 * e.abs().max(1.0),
                            "unknown {g}: {} vs {e}", local[idx]
                        );
                        idx += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_matches_serial_fold(
        vals in prop::collection::vec(-1e6f64..1e6, 1..8),
        ranks in 1usize..=9,
    ) {
        let v = vals.clone();
        let results = run_ranks::<f64, _, _>(ranks, ReduceOrder::RankOrder, move |comm| {
            let mut mine: Vec<f64> = v.iter().map(|x| x + comm.rank() as f64).collect();
            comm.all_reduce(&mut mine, ReduceOp::Sum);
            mine
        });
        // serial reference with the same fold order (rank 0, 1, 2, ...)
        let mut expect: Vec<f64> = vals.to_vec();
        for r in 1..ranks {
            for (e, x) in expect.iter_mut().zip(&vals) {
                *e += x + r as f64;
            }
        }
        for res in &results {
            for (a, b) in res.iter().zip(&expect) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn bicgstab_solution_satisfies_system(
        (global, rhs) in grid_strategy(),
    ) {
        let grid = BlockGrid::new(global.clone(), Decomp::single(), 0);
        let ctx: RankCtx<f64, _, SelfComm<f64>> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        let b = Field::from_interior(&ctx.dev, &ctx.grid, &rhs);
        let mut x = ctx.field();
        let mut ws = Workspace::new(&ctx.dev, &ctx.grid);
        let bnorm: f64 = rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assume!(bnorm > 1e-8);
        let tol = 1e-9 * bnorm;
        let out = bicgstab_solve(
            &ctx, Scope::Global, &b, &mut x, &mut IdentityPrec, &mut ws,
            &SolveParams { tol, max_iters: 20_000, record_history: false, ..Default::default() },
        );
        prop_assert!(out.converged, "{:?}", out);
        // verify independently against the dense operator
        let dense = assemble_poisson(&ctx.lap.global_ops(), global.h);
        let got = x.interior_to_host(&ctx.grid);
        let ax = dense.matvec(&got);
        let res: f64 = ax.iter().zip(&rhs).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        prop_assert!(res < 10.0 * tol, "true residual {res} vs tol {tol}");
    }

    #[test]
    fn chebyshev_is_a_linear_fixed_operator(
        (global, u) in grid_strategy(),
        seed in 1u64..u64::MAX,
        a in -3.0f64..3.0,
        c in -3.0f64..3.0,
        sweeps in 1usize..12,
    ) {
        let grid = BlockGrid::new(global.clone(), Decomp::single(), 0);
        let ctx: RankCtx<f64, _, SelfComm<f64>> =
            RankCtx::new(Serial::new(Recorder::disabled()), SelfComm::default(), grid);
        let n = global.unknowns();
        let mut state = seed;
        let v: Vec<f64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }).collect();
        let bounds = global_bounds(&ctx);
        let apply = |rhs: &[f64]| -> Vec<f64> {
            let mut b = Field::from_interior(&ctx.dev, &ctx.grid, rhs);
            let mut out = ctx.field();
            let mut ci = ChebyshevIteration::new(&ctx, ChebyMode::GlobalNoComm, bounds, sweeps);
            ci.solve(&ctx, &mut b, &mut out);
            out.interior_to_host(&ctx.grid)
        };
        let combo: Vec<f64> = u.iter().zip(&v).map(|(x, y)| a * x + c * y).collect();
        let mu = apply(&u);
        let mv = apply(&v);
        let mc = apply(&combo);
        for i in 0..n {
            let expect = a * mu[i] + c * mv[i];
            let scale = mu[i].abs().max(mv[i].abs()).max(1.0) * (a.abs() + c.abs() + 1.0);
            prop_assert!(
                (mc[i] - expect).abs() < 1e-9 * scale,
                "linearity at {i}: {} vs {expect}", mc[i]
            );
        }
        // fixed operator: repeated application of the same input is bitwise equal
        let mu2 = apply(&u);
        for i in 0..n {
            prop_assert_eq!(mu[i].to_bits(), mu2[i].to_bits());
        }
    }

    /// Batching transparency of the split-phase reduction: one
    /// `iall_reduce_batch` over N single-scalar groups returns exactly
    /// the bits of N sequential blocking `all_reduce` calls under
    /// RankOrder, with the local scalars produced by the device dot
    /// kernel on every back-end. This is the invariant that lets the
    /// overlapped Bi-CGSTAB merge its per-iteration dots into two
    /// batched messages without perturbing a single bit.
    #[test]
    fn batched_iall_reduce_matches_sequential_all_reduce(
        (global, input) in grid_strategy(),
        decomp in decomp_strategy(),
        dev_spec in prop_oneof![Just("serial"), Just("threads:3"), Just("simgpu:4")],
        nscalars in 1usize..=6,
    ) {
        for (d, n) in decomp.iter().zip(&global.n) {
            prop_assume!(d <= n);
        }
        let d = Decomp::new(decomp);
        let run = |batched: bool| {
            let g2 = global.clone();
            let inp = input.clone();
            run_ranks::<f64, _, _>(d.ranks(), ReduceOrder::RankOrder, move |comm| {
                let grid = BlockGrid::new(g2.clone(), d, comm.rank());
                let dev = accel::AnyDevice::from_spec(dev_spec, Recorder::disabled()).unwrap();
                let local = scatter(&g2, &grid, &inp);
                let u = Field::from_interior(&dev, &grid, &local);
                let base = krylov::kernels::dot(&dev, krylov::kernels::INFO_DOT, &grid, &u, &u);
                let vals: Vec<f64> = (0..nscalars)
                    .map(|s| base * (0.25 + 0.5 * s as f64) - s as f64)
                    .collect();
                let reduced: Vec<f64> = if batched {
                    let groups: Vec<&[f64]> = vals.iter().map(std::slice::from_ref).collect();
                    let req = comm.iall_reduce_batch(&groups, ReduceOp::Sum);
                    let mut out = vec![0.0; nscalars];
                    comm.reduce_finish(req, &mut out);
                    out
                } else {
                    vals.iter()
                        .map(|&v| {
                            let mut one = [v];
                            comm.all_reduce(&mut one, ReduceOp::Sum);
                            one[0]
                        })
                        .collect()
                };
                reduced.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
            })
        };
        let sequential = run(false);
        let batch = run(true);
        for (rank, (s, b)) in sequential.iter().zip(&batch).enumerate() {
            prop_assert_eq!(s, b, "reduced scalars differ on rank {}", rank);
        }
    }

    /// Tentpole invariant of the split-phase halo exchange: on every
    /// back-end, `begin → BCs → apply_interior → finish → apply_shell`
    /// leaves the field (ghosts included) and the operator output
    /// bitwise-identical to the synchronous
    /// `exchange → BCs → apply` path, for random shapes, decompositions
    /// and boundary conditions.
    #[test]
    fn split_phase_apply_is_bitwise_identical(
        (global, input) in grid_strategy(),
        decomp in decomp_strategy(),
        dev_spec in prop_oneof![Just("serial"), Just("threads:3"), Just("simgpu:4")],
    ) {
        for (d, n) in decomp.iter().zip(&global.n) {
            prop_assume!(d <= n);
        }
        let d = Decomp::new(decomp);
        let mut feasible = true;
        for rank in 0..d.ranks() {
            let bg = BlockGrid::new(global.clone(), d, rank);
            for a in 0..3 {
                let neumann = (0..2).any(|s| {
                    matches!(bg.boundary(a, s), blockgrid::LocalBoundary::Physical(BcKind::Neumann))
                });
                if neumann && bg.local_n[a] < 2 {
                    feasible = false;
                }
            }
        }
        prop_assume!(feasible);

        // (field bits, A·field bits) per rank, sync and split flavours
        let run = |split: bool| {
            let g2 = global.clone();
            let inp = input.clone();
            run_ranks::<f64, _, _>(d.ranks(), ReduceOrder::RankOrder, move |comm| {
                let grid = BlockGrid::new(g2.clone(), d, comm.rank());
                let dev = accel::AnyDevice::from_spec(dev_spec, Recorder::disabled()).unwrap();
                let local = scatter(&g2, &grid, &inp);
                let mut u = Field::from_interior(&dev, &grid, &local);
                let lap = Laplacian::new(&grid);
                let mut w = Field::zeros(&dev, &grid);
                let halo = HaloExchange::new(&grid);
                if split {
                    // LINT: collective-uniform(`split` is the closure's bool
                    // argument, identical on every rank)
                    let pending = halo.begin(&dev, &comm, &u);
                    apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
                    lap.apply_interior(&dev, INFO_APPLY, &u, &mut w);
                    // LINT: collective-uniform(same rank-uniform `split` flag)
                    halo.finish(&dev, &comm, pending, &mut u);
                    lap.apply_shell(&dev, INFO_APPLY, &u, &mut w);
                } else {
                    // LINT: collective-uniform(same rank-uniform `split` flag)
                    halo.exchange(&dev, &comm, &mut u);
                    apply_physical_bcs(&grid, &mut u, &Recorder::disabled(), false);
                    lap.apply(&dev, INFO_APPLY, &u, &mut w);
                }
                let bits = |f: &Field<f64>| -> Vec<u64> {
                    f.as_slice().iter().map(|v| v.to_bits()).collect()
                };
                (bits(&u), bits(&w))
            })
        };
        let sync = run(false);
        let split = run(true);
        for (rank, ((us, ws), (uo, wo))) in sync.iter().zip(&split).enumerate() {
            prop_assert_eq!(us, uo, "ghost-refreshed field differs on rank {}", rank);
            prop_assert_eq!(ws, wo, "operator output differs on rank {}", rank);
        }
    }
}
