//! Integration: performance portability across back-ends.
//!
//! The paper's claim — one solver source, every back-end — tested end to
//! end: element-wise identical kernels, convergent solves, bounded
//! reduction-order divergence, and single-precision operation.

use accel::{AnyDevice, Recorder};
use blockgrid::Decomp;
use comm::{run_ranks, Communicator, ReduceOrder, SelfComm};
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};

const BACKENDS: [&str; 4] = ["serial", "threads:3", "mi250x", "h100"];

fn solve_on(device: &str, nodes: usize) -> (usize, f64, Vec<f64>) {
    let dev = AnyDevice::from_spec(device, Recorder::disabled()).unwrap();
    let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
        paper_problem(nodes),
        Decomp::single(),
        dev,
        SelfComm::default(),
    );
    let out = solver.solve(
        SolverKind::BiCgsGNoCommCi,
        &SolverOptions {
            eig_min_factor: 10.0,
            ..Default::default()
        },
        &SolveParams {
            tol: 1e-11,
            max_iters: 20_000,
            record_history: true,
            ..Default::default()
        },
    );
    assert!(out.converged, "{device}: {out:?}");
    (
        out.iterations,
        solver.error_vs_exact().0,
        out.residual_history,
    )
}

#[test]
fn all_backends_converge_with_comparable_iterations() {
    let runs: Vec<_> = BACKENDS.iter().map(|b| solve_on(b, 17)).collect();
    let iters: Vec<usize> = runs.iter().map(|r| r.0).collect();
    let min = *iters.iter().min().unwrap();
    let max = *iters.iter().max().unwrap();
    // reduction order may shift iteration counts slightly (the paper's
    // Fig. 4 effect) but never the convergence itself
    assert!(max <= min * 2, "iteration spread too large: {iters:?}");
    for (b, (_, l2, _)) in BACKENDS.iter().zip(&runs) {
        assert!(*l2 < 1e-2, "{b}: L2 {l2}");
    }
}

#[test]
fn residual_histories_diverge_only_in_rounding() {
    let runs: Vec<_> = BACKENDS.iter().map(|b| solve_on(b, 17)).collect();
    let reference = &runs[0].2;
    for (b, (_, _, hist)) in BACKENDS.iter().zip(&runs).skip(1) {
        let common = hist.len().min(reference.len());
        // early iterations must track each other tightly; rounding noise
        // may amplify late in the solve
        for i in 0..common.min(5) {
            let rel = (hist[i] - reference[i]).abs() / reference[i].max(f64::MIN_POSITIVE);
            assert!(rel < 1e-6, "{b} iter {i}: divergence {rel}");
        }
    }
}

#[test]
fn distributed_solve_on_simulated_gpus() {
    run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, |comm| {
        let dev = AnyDevice::from_spec("mi250x", Recorder::disabled()).unwrap();
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(paper_problem(17), Decomp::new([2, 2, 2]), dev, comm);
        let out = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-11,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged);
    });
}

#[test]
fn f32_pipeline_works_on_every_backend() {
    for device in BACKENDS {
        let dev = AnyDevice::from_spec(device, Recorder::disabled()).unwrap();
        let mut solver: PoissonSolver<f32, _, _> = PoissonSolver::new(
            paper_problem(13),
            Decomp::single(),
            dev,
            SelfComm::default(),
        );
        let out = solver.solve(
            SolverKind::BiCgsGNoCommCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 5e-5,
                max_iters: 10_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged, "{device} (f32): {out:?}");
    }
}

#[test]
fn mixed_backends_across_ranks_interoperate() {
    // heterogeneous worlds are unusual but nothing in the design forbids
    // them: each rank picks its own back-end (e.g. CPU + GPU nodes)
    run_ranks::<f64, _, _>(4, ReduceOrder::RankOrder, |comm| {
        let spec = BACKENDS[comm.rank() % BACKENDS.len()];
        let dev = AnyDevice::from_spec(spec, Recorder::disabled()).unwrap();
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(paper_problem(13), Decomp::new([2, 2, 1]), dev, comm);
        let out = solver.solve(
            SolverKind::BiCgsBjCi,
            &SolverOptions {
                eig_min_factor: 10.0,
                ..Default::default()
            },
            &SolveParams {
                tol: 1e-10,
                max_iters: 20_000,
                record_history: false,
                ..Default::default()
            },
        );
        assert!(out.converged, "rank with {spec}: {out:?}");
    });
}
