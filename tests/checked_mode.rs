//! Integration: the correctness tooling guards the real pipeline.
//!
//! The whole distributed solve — decomposition, split-phase halo
//! exchange, fused kernels, preconditioned Bi-CGSTAB — runs under the
//! kernel sanitizer ([`check::Checked`]) and the comm-protocol verifier
//! ([`check::VerifiedComm`]) and must produce zero diagnostics while
//! converging exactly as the unchecked pipeline does.

use accel::{AnyDevice, Recorder, Serial};
use blockgrid::Decomp;
use check::{try_run_ranks_checked, CheckConfig, Checked};
use comm::{Communicator, ReduceOp, SelfComm};
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, PoissonSolver};

fn opts() -> SolverOptions {
    SolverOptions {
        eig_min_factor: 10.0,
        ..Default::default()
    }
}

fn params() -> SolveParams {
    SolveParams {
        tol: 1e-12,
        max_iters: 30_000,
        record_history: false,
        ..Default::default()
    }
}

/// Every back-end spec the cross-backend suite exercises also solves
/// cleanly when wrapped in the sanitizer — and bitwise-identically.
#[test]
fn all_backends_solve_identically_under_the_sanitizer() {
    for spec in ["serial", "threads:3", "mi250x"] {
        let (plain_iters, plain_sol) = run_one(spec, false);
        let (checked_iters, checked_sol) = run_one(spec, true);
        assert_eq!(plain_iters, checked_iters, "{spec}");
        for (a, b) in plain_sol.iter().zip(&checked_sol) {
            assert_eq!(a.to_bits(), b.to_bits(), "{spec}");
        }
    }
}

fn run_one(spec: &str, checked: bool) -> (usize, Vec<f64>) {
    let dev = AnyDevice::from_spec(spec, Recorder::disabled()).unwrap();
    if checked {
        solve_with(Checked::new(dev))
    } else {
        solve_with(dev)
    }
}

fn solve_with<D: accel::Device>(dev: D) -> (usize, Vec<f64>) {
    let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
        paper_problem(13),
        Decomp::single(),
        dev,
        SelfComm::default(),
    );
    let out = solver.solve(SolverKind::BiCgsGNoCommCi, &opts(), &params());
    assert!(out.converged, "{out:?}");
    (out.iterations, solver.solution_local())
}

/// The paper's distributed configuration under full checking: sanitized
/// devices and verified communicators on a 2x2x1 decomposition, with the
/// deadlock detector and teardown audit armed. Zero false positives.
#[test]
fn distributed_paper_solve_is_clean_under_full_checking() {
    let decomp = Decomp::new([2, 2, 1]);
    let results = try_run_ranks_checked::<f64, _, _>(4, CheckConfig::default(), move |comm| {
        let dev = Checked::new(Serial::new(Recorder::disabled()));
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(paper_problem(13), decomp, dev, comm);
        let out = solver.solve(SolverKind::BiCgsGNoCommCi, &opts(), &params());
        let (l2, _) = solver.error_vs_exact();
        (out.converged, l2)
    })
    .unwrap_or_else(|failure| panic!("false positives in checked mode:\n{failure}"));
    for (converged, l2) in &results {
        assert!(converged);
        assert!(*l2 < 1e-3, "relative L2 error {l2}");
    }
}

/// The reduction-overlap schedule under full checking: 8 verified ranks
/// on a 2x2x2 decomposition run the overlapped Bi-CGSTAB — split-phase
/// batched reductions, lagged convergence check, post-loop drain — with
/// zero findings from the verifier or the teardown audit.
#[test]
fn distributed_overlap_reduce_solve_is_clean_under_full_checking() {
    let decomp = Decomp::new([2, 2, 2]);
    let results = try_run_ranks_checked::<f64, _, _>(8, CheckConfig::default(), move |comm| {
        let dev = Checked::new(Serial::new(Recorder::disabled()));
        let mut solver: PoissonSolver<f64, _, _> =
            PoissonSolver::new(paper_problem(13), decomp, dev, comm);
        let params = SolveParams {
            overlap_reduce: true,
            ..params()
        };
        let out = solver.solve(SolverKind::BiCgsGNoCommCi, &opts(), &params);
        let (l2, _) = solver.error_vs_exact();
        (out.converged, l2)
    })
    .unwrap_or_else(|failure| panic!("false positives in checked mode:\n{failure}"));
    for (converged, l2) in &results {
        assert!(converged);
        assert!(*l2 < 1e-3, "relative L2 error {l2}");
    }
}

/// Seeded mutation: a rank that begins an `iall_reduce` and drops the
/// request without ever calling `reduce_finish` must be caught by the
/// teardown audit — with the offending rank named, and no other rank
/// blamed.
#[test]
fn verifier_reports_dropped_reduce_request_with_rank_provenance() {
    let offender = 2usize;
    let failure = try_run_ranks_checked::<f64, _, _>(4, CheckConfig::default(), move |comm| {
        let req = comm.iall_reduce(&[comm.rank() as f64 + 1.0], ReduceOp::Sum);
        if comm.rank() == offender {
            drop(req); // the seeded bug: the request is never completed
            [0.0]
        } else {
            let mut out = [0.0];
            // LINT: collective-uniform(deliberate divergence: the seeded
            // dropped-request bug this test expects the verifier to catch)
            comm.reduce_finish(req, &mut out);
            out
        }
    })
    .expect_err("the dropped request must be reported at teardown");
    assert!(failure.panics.is_empty(), "{failure}");
    let expect = format!("dropped reduction: rank {offender} began 1 iall_reduce");
    assert!(
        failure.findings.iter().any(|f| f.contains(&expect)),
        "findings lack rank provenance: {failure}"
    );
    for innocent in [0usize, 1, 3] {
        let wrong = format!("dropped reduction: rank {innocent} ");
        assert!(
            !failure.findings.iter().any(|f| f.contains(&wrong)),
            "innocent rank {innocent} blamed: {failure}"
        );
    }
}
