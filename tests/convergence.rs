//! Integration: discretisation accuracy of the full distributed pipeline.
//!
//! These tests exercise problem setup → decomposition → halo exchange →
//! preconditioned solve → error evaluation end to end and check the
//! mathematical contract: second-order convergence to the manufactured
//! solution, independent of solver configuration, decomposition and
//! boundary-condition mix.

use accel::{Recorder, Serial};
use blockgrid::{BcKind, Decomp};
use comm::{run_ranks, ReduceOrder, SelfComm};
use krylov::{SolveParams, SolverKind, SolverOptions};
use poisson::{paper_problem, unit_cube_dirichlet, PoissonSolver};

fn opts() -> SolverOptions {
    SolverOptions {
        eig_min_factor: 10.0,
        ..Default::default()
    }
}

fn params(tol: f64) -> SolveParams {
    SolveParams {
        tol,
        max_iters: 30_000,
        record_history: false,
        ..Default::default()
    }
}

/// Solve the paper problem on one rank; return the relative L2 error.
fn single_rank_error(nodes: usize, kind: SolverKind) -> f64 {
    let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
        paper_problem(nodes),
        Decomp::single(),
        Serial::new(Recorder::disabled()),
        SelfComm::default(),
    );
    let out = solver.solve(kind, &opts(), &params(1e-12));
    assert!(out.converged, "{kind} at {nodes}^3: {out:?}");
    solver.error_vs_exact().0
}

#[test]
fn every_solver_reaches_discretisation_accuracy() {
    let reference = single_rank_error(11, SolverKind::BiCgs);
    for kind in SolverKind::all() {
        let err = single_rank_error(11, kind);
        // all solvers solve the same linear system: errors agree closely
        assert!(
            (err - reference).abs() < 0.02 * reference,
            "{kind}: error {err} vs reference {reference}"
        );
    }
}

#[test]
fn second_order_convergence_under_refinement() {
    let e1 = single_rank_error(9, SolverKind::BiCgsGNoCommCi);
    let e2 = single_rank_error(17, SolverKind::BiCgsGNoCommCi);
    let e3 = single_rank_error(33, SolverKind::BiCgsGNoCommCi);
    let r12 = e1 / e2;
    let r23 = e2 / e3;
    assert!(
        (3.0..5.5).contains(&r12),
        "halving h: {e1} -> {e2} (rate {r12})"
    );
    assert!(
        (3.0..5.5).contains(&r23),
        "halving h: {e2} -> {e3} (rate {r23})"
    );
}

#[test]
fn distributed_matches_single_rank_accuracy() {
    let single = single_rank_error(17, SolverKind::BiCgsGNoCommCi);
    for decomp in [[2, 1, 1], [1, 2, 2], [2, 2, 2], [4, 1, 2]] {
        let d = Decomp::new(decomp);
        let errs = run_ranks::<f64, _, _>(d.ranks(), ReduceOrder::RankOrder, move |comm| {
            let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
                paper_problem(17),
                d,
                Serial::new(Recorder::disabled()),
                comm,
            );
            let out = solver.solve(SolverKind::BiCgsGNoCommCi, &opts(), &params(1e-12));
            assert!(out.converged);
            solver.error_vs_exact().0
        });
        for err in &errs {
            assert!(
                (err - single).abs() < 0.05 * single,
                "decomp {decomp:?}: {err} vs single-rank {single}"
            );
        }
    }
}

#[test]
fn all_dirichlet_problem_converges_everywhere() {
    run_ranks::<f64, _, _>(8, ReduceOrder::RankOrder, |comm| {
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            unit_cube_dirichlet(17),
            Decomp::new([2, 2, 2]),
            Serial::new(Recorder::disabled()),
            comm,
        );
        let out = solver.solve(SolverKind::BiCgsBjCi, &opts(), &params(1e-11));
        assert!(out.converged);
        let (l2, _) = solver.error_vs_exact();
        assert!(l2 < 5e-3, "relative L2 {l2}");
    });
}

#[test]
fn mixed_bc_variants_all_solve() {
    // sweep several BC mixes of the same manufactured solution
    let mixes: [[[BcKind; 2]; 3]; 3] = [
        [
            [BcKind::Neumann, BcKind::Dirichlet],
            [BcKind::Dirichlet, BcKind::Neumann],
            [BcKind::Dirichlet, BcKind::Dirichlet],
        ],
        [
            [BcKind::Dirichlet, BcKind::Dirichlet],
            [BcKind::Neumann, BcKind::Dirichlet],
            [BcKind::Neumann, BcKind::Dirichlet],
        ],
        [
            [BcKind::Neumann, BcKind::Neumann],
            [BcKind::Dirichlet, BcKind::Dirichlet],
            [BcKind::Dirichlet, BcKind::Neumann],
        ],
    ];
    for bc in mixes {
        let mut problem = paper_problem(13);
        problem.bc = bc;
        let mut solver: PoissonSolver<f64, _, _> = PoissonSolver::new(
            problem,
            Decomp::single(),
            Serial::new(Recorder::disabled()),
            SelfComm::default(),
        );
        let out = solver.solve(SolverKind::BiCgsGNoCommCi, &opts(), &params(1e-11));
        assert!(out.converged, "bc {bc:?}: {out:?}");
        let (l2, _) = solver.error_vs_exact();
        assert!(l2 < 2e-3, "bc {bc:?}: relative L2 {l2}");
    }
}
