//! Minimal `serde` stand-in for offline builds.
//!
//! The workspace only ever *serialises* plain records to JSON (via
//! `serde_json::to_string_pretty`), so the whole data-model machinery of
//! real serde collapses to one method: [`Serialize::to_value`] producing a
//! JSON-like [`Value`] tree. `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! are provided by the companion `serde_derive` shim and re-exported here
//! so `use serde::{Serialize, Deserialize}` call sites compile unchanged.

// Let the derive macro's generated `serde::...` paths resolve when the
// derive is used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree — the shim's entire data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer (`U64`, or a non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Types convertible to a [`Value`] tree (the shim's `serde::Serialize`).
pub trait Serialize {
    /// Convert `self` to a JSON-like value.
    fn to_value(&self) -> Value;
}

/// Marker for deserialisable types. The workspace derives it but never
/// exercises deserialisation, so no methods are required.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::U64(3));
        assert_eq!((-7i32).to_value(), Value::I64(-7));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1usize, 2.0f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::U64(1), Value::F64(2.0)])])
        );
    }

    #[test]
    fn derive_struct_and_enum() {
        #[derive(Serialize)]
        struct Rec {
            name: String,
            count: usize,
            tag: Kind,
        }
        #[derive(Serialize)]
        enum Kind {
            Fast,
            #[allow(dead_code)]
            Slow,
        }
        let r = Rec {
            name: "a".into(),
            count: 2,
            tag: Kind::Fast,
        };
        assert_eq!(
            r.to_value(),
            Value::Object(vec![
                ("name".into(), Value::Str("a".into())),
                ("count".into(), Value::U64(2)),
                ("tag".into(), Value::Str("Fast".into())),
            ])
        );
    }

    #[test]
    fn derive_generic_struct() {
        #[derive(Serialize)]
        struct Wrap<T: Serialize> {
            data: T,
        }
        let w = Wrap {
            data: vec![1u32, 2],
        };
        assert_eq!(
            w.to_value(),
            Value::Object(vec![(
                "data".into(),
                Value::Array(vec![Value::U64(1), Value::U64(2)])
            )])
        );
    }
}
