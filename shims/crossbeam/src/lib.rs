//! Minimal `crossbeam` stand-in for offline builds.
//!
//! Only [`channel`] is provided, and of it only what the workspace uses:
//! an unbounded MPMC channel with clonable [`channel::Sender`] and
//! [`channel::Receiver`] whose `recv` fails once the channel is both
//! empty and sender-less (the disconnect protocol the thread-pool worker
//! loop relies on to terminate).

pub mod channel {
    //! Unbounded MPMC channel on `std::sync` primitives.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug without requiring `T: Debug`, so
    // `send(..).expect(..)` works for any payload.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; clonable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing only if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                let _guard = self.shared.queue.lock();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Dequeue without blocking; `None` when empty (including after
        /// disconnect).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn disconnect_terminates_receivers() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn mpmc_consumes_each_message_once() {
            let (tx, rx) = unbounded::<usize>();
            let n = 1000;
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<usize> = workers
                .into_iter()
                .flat_map(|w| w.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
