//! Minimal `parking_lot` stand-in backed by `std::sync`.
//!
//! The build environment has no access to a crates-io mirror, so this shim
//! provides exactly the subset of the real crate's API the workspace uses:
//! a non-poisoning [`Mutex`] (with `lock`, `into_inner`) and a [`Condvar`]
//! whose `wait` takes `&mut MutexGuard`. Poison errors are swallowed the
//! way parking_lot semantics prescribe: a panicking lock holder does not
//! make the data unreachable.

use std::sync::{self, TryLockError};

/// Non-poisoning mutual-exclusion lock (API subset of `parking_lot::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Acquire the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable pairing with [`Mutex`] (API subset of
/// `parking_lot::Condvar`: `wait` takes the guard by `&mut`).
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and sleep until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Move the std guard out of `slot`, run `f` on it, and put the result
/// back. `std::sync::Condvar::wait` consumes the guard, while the
/// parking_lot API mutates it in place; this adapter bridges the two
/// without an unlock/relock gap.
fn replace_guard<'a, T>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is overwritten with a live guard for the same mutex
    // before this function returns, and the temporarily-duplicated guard
    // is consumed by `f` (Condvar::wait) immediately — no double unlock.
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock stays usable after a panicked holder");
    }
}
