//! Minimal `serde_json` stand-in: render the serde shim's [`serde::Value`]
//! tree as JSON text, and parse JSON text back into a [`serde::Value`]
//! tree ([`from_str`]) — enough for the workspace's schema round-trip
//! tests (`spmdlint --json`) without the real crate.

use std::fmt;

/// Serialisation error. The shim's writer is total over finite values;
/// only non-finite floats are rejected (matching real serde_json, which
/// has no representation for them either).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialisation error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialise `value` as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serialise `value` as human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

fn write_value(
    v: &serde::Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    use serde::Value::*;
    match v {
        Null => out.push_str("null"),
        Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        U64(n) => out.push_str(&n.to_string()),
        I64(n) => out.push_str(&n.to_string()),
        F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x}")));
            }
            // Match serde_json's convention of keeping floats recognisable
            // as floats: integral values render with a trailing `.0`.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Str(s) => write_string(s, out),
        Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: what went wrong and the byte offset it was noticed at.
#[derive(Debug)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document into a [`serde::Value`] tree.
///
/// Strict where it matters for round-trips (rejects trailing garbage,
/// trailing commas, unterminated strings), permissive about whitespace.
/// Integers without a fraction or exponent parse as `U64`/`I64`; all
/// other numbers parse as `F64`.
pub fn from_str(text: &str) -> Result<serde::Value, ParseError> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.i,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: serde::Value) -> Result<serde::Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<serde::Value, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(serde::Value::Str(self.string()?)),
            Some(b't') => self.literal("true", serde::Value::Bool(true)),
            Some(b'f') => self.literal("false", serde::Value::Bool(false)),
            Some(b'n') => self.literal("null", serde::Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<serde::Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(serde::Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(serde::Value::Object(entries));
        }
    }

    fn array(&mut self) -> Result<serde::Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(serde::Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(serde::Value::Array(items));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 leaves `i` past the digits; undo the
                            // generic advance below.
                            self.i -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are trustworthy).
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .b
                .get(self.i)
                .and_then(|c| (*c as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<serde::Value, ParseError> {
        let start = self.i;
        let neg = self.eat(b'-');
        let mut float = false;
        while let Some(c) = self.b.get(self.i) {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(serde::Value::F64)
                .map_err(|e| self.err(format!("bad float `{text}`: {e}")))
        } else if neg {
            text.parse::<i64>()
                .map(serde::Value::I64)
                .map_err(|e| self.err(format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(serde::Value::U64)
                .map_err(|e| self.err(format!("bad integer `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Rec {
        name: String,
        ranks: usize,
        time_s: f64,
        series: Vec<f64>,
    }

    #[test]
    fn pretty_output_shape() {
        let r = Rec {
            name: "fig6".into(),
            ranks: 8,
            time_s: 0.25,
            series: vec![1.0, 0.5],
        };
        let txt = to_string_pretty(&r).unwrap();
        assert!(txt.contains("\"name\": \"fig6\""));
        assert!(txt.contains("\"ranks\": 8"));
        assert!(txt.contains("\"time_s\": 0.25"));
        assert!(txt.contains("1.0"), "integral floats keep a .0: {txt}");
        assert!(txt.starts_with("{\n"));
        assert!(txt.ends_with('}'));
    }

    #[test]
    fn compact_output_and_escaping() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(
            to_string(&vec![1u32, 2]).unwrap(),
            "[\n1,\n2\n]".replace('\n', "")
        );
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let r = Rec {
            name: "fig6 \"quoted\" \n".into(),
            ranks: 8,
            time_s: 0.25,
            series: vec![1.0, 0.5],
        };
        for text in [to_string(&r).unwrap(), to_string_pretty(&r).unwrap()] {
            let v = from_str(&text).unwrap();
            assert_eq!(
                v.get("name").and_then(|v| v.as_str()),
                Some("fig6 \"quoted\" \n")
            );
            assert_eq!(v.get("ranks").and_then(|v| v.as_u64()), Some(8));
            assert_eq!(v.get("time_s"), Some(&serde::Value::F64(0.25)));
            assert_eq!(
                v.get("series").and_then(|v| v.as_array()).map(<[_]>::len),
                Some(2)
            );
        }
    }

    #[test]
    fn parse_scalars_and_structure() {
        assert_eq!(from_str("null").unwrap(), serde::Value::Null);
        assert_eq!(from_str(" true ").unwrap(), serde::Value::Bool(true));
        assert_eq!(from_str("42").unwrap(), serde::Value::U64(42));
        assert_eq!(from_str("-7").unwrap(), serde::Value::I64(-7));
        assert_eq!(from_str("2.5e1").unwrap(), serde::Value::F64(25.0));
        assert_eq!(
            from_str("[1, [2], {}]").unwrap(),
            serde::Value::Array(vec![
                serde::Value::U64(1),
                serde::Value::Array(vec![serde::Value::U64(2)]),
                serde::Value::Object(Vec::new()),
            ])
        );
        assert_eq!(
            from_str(r#""a\u0041\ud83d\ude00b""#).unwrap(),
            serde::Value::Str("aA\u{1f600}b".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "\"unterminated",
            "tru",
            "1 2",
            "{\"a\" 1}",
            r#""\ud800x""#,
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }
}
