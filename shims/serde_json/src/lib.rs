//! Minimal `serde_json` stand-in: render the serde shim's [`serde::Value`]
//! tree as JSON text. Only the writer half exists — the workspace never
//! parses JSON back.

use std::fmt;

/// Serialisation error. The shim's writer is total over finite values;
/// only non-finite floats are rejected (matching real serde_json, which
/// has no representation for them either).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialisation error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialise `value` as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serialise `value` as human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

fn write_value(
    v: &serde::Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    use serde::Value::*;
    match v {
        Null => out.push_str("null"),
        Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        U64(n) => out.push_str(&n.to_string()),
        I64(n) => out.push_str(&n.to_string()),
        F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x}")));
            }
            // Match serde_json's convention of keeping floats recognisable
            // as floats: integral values render with a trailing `.0`.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&format!("{x}"));
            }
        }
        Str(s) => write_string(s, out),
        Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Rec {
        name: String,
        ranks: usize,
        time_s: f64,
        series: Vec<f64>,
    }

    #[test]
    fn pretty_output_shape() {
        let r = Rec {
            name: "fig6".into(),
            ranks: 8,
            time_s: 0.25,
            series: vec![1.0, 0.5],
        };
        let txt = to_string_pretty(&r).unwrap();
        assert!(txt.contains("\"name\": \"fig6\""));
        assert!(txt.contains("\"ranks\": 8"));
        assert!(txt.contains("\"time_s\": 0.25"));
        assert!(txt.contains("1.0"), "integral floats keep a .0: {txt}");
        assert!(txt.starts_with("{\n"));
        assert!(txt.ends_with('}'));
    }

    #[test]
    fn compact_output_and_escaping() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(
            to_string(&vec![1u32, 2]).unwrap(),
            "[\n1,\n2\n]".replace('\n', "")
        );
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
