//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote — the
//! build environment is offline). Supports exactly what the workspace
//! derives on: structs with named fields (optionally generic, bounds
//! re-emitted verbatim) and enums with unit variants. Anything else is a
//! compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a `derive` input.
struct Input {
    name: String,
    /// Generic parameter declarations, e.g. `T: Serialize` (without `<>`).
    generics_decl: String,
    /// Bare generic arguments, e.g. `T` (without `<>`).
    generics_args: String,
    body: Body,
}

enum Body {
    /// Named struct fields in declaration order.
    Struct(Vec<String>),
    /// Unit enum variants in declaration order.
    Enum(Vec<String>),
}

/// Derive `serde::Serialize` (the shim's `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let header = impl_header(&parsed, "serde::Serialize");
    let body = match &parsed.body {
        Body::Struct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("serde::Value::Object(vec![{entries}])")
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!("{header} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}")
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derive the (marker) `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    format!("{} {{ }}", impl_header(&parsed, "serde::Deserialize"))
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

fn impl_header(input: &Input, trait_path: &str) -> String {
    if input.generics_decl.is_empty() {
        format!("impl {trait_path} for {}", input.name)
    } else {
        format!(
            "impl<{}> {trait_path} for {}<{}>",
            input.generics_decl, input.name, input.generics_args
        )
    }
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    let (generics_decl, generics_args) = parse_generics(&tokens, &mut i);
    // Skip a `where` clause if present (none in this workspace, but cheap).
    while i < tokens.len()
        && !matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
    {
        i += 1;
    }
    let body_group = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g,
        _ => panic!("serde_derive: only brace-bodied structs/enums are supported"),
    };
    let body_tokens: Vec<TokenTree> = body_group.stream().into_iter().collect();
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(&body_tokens)),
        "enum" => Body::Enum(parse_unit_variants(&body_tokens)),
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Input {
        name,
        generics_decl,
        generics_args,
        body,
    }
}

/// Advance past outer attributes (`#[...]`) and a visibility modifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<...>` generics if present; returns (decl text, bare args text).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> (String, String) {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return (String::new(), String::new()),
    }
    *i += 1; // consume `<`
    let mut depth = 1usize;
    let mut decl = String::new();
    let mut args: Vec<String> = Vec::new();
    let mut expect_param = true;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                decl.push('<');
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    return (decl, args.join(", "));
                }
                decl.push('>');
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                decl.push(',');
                expect_param = true;
            }
            tt => {
                if expect_param && depth == 1 {
                    if let TokenTree::Ident(id) = tt {
                        let s = id.to_string();
                        if s != "const" {
                            args.push(s);
                            expect_param = false;
                        }
                    }
                    // lifetimes (leading `'`) are passed through in `decl`
                    // and re-emitted; none are used in this workspace.
                }
                decl.push_str(&tt.to_string());
                decl.push(' ');
            }
        }
        *i += 1;
    }
    panic!("serde_derive: unbalanced generics on derive input");
}

/// Field names of a named-field struct body.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive: tuple structs are not supported (field `{name}`)"),
        }
        fields.push(name);
        // Skip the type: consume until a top-level `,` (angle-bracket aware;
        // nested (), [], {} arrive as single Group tokens).
        let mut angle = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(tokens: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            panic!("serde_derive: only unit enum variants are supported (variant `{name}`)");
        }
        variants.push(name);
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}
