//! Minimal `criterion` stand-in for offline builds.
//!
//! Keeps the harness API (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `Bencher::iter`) so the bench sources compile
//! unchanged, but replaces the statistical machinery with a simple
//! wall-clock loop: one warm-up call, then `sample_size` timed samples,
//! reporting mean and minimum per benchmark. Honest timings, no outlier
//! analysis, no plots. `CRITERION_SAMPLES` overrides the per-group sample
//! count (handy for quick smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (sample-count default carrier).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample
    /// count instead of a target duration.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up with one call.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark (reported as its own group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(id, sample_size, f);
        self
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`-style entry points: a `BenchmarkId` or a
/// plain string.
pub trait IntoBenchmarkId {
    /// Rendered identifier text.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// Throughput annotation (recorded to compute per-element rates).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Record the per-iteration throughput (reported alongside times).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (see [`Criterion::measurement_time`]).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_text());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }

    /// Caller-measured timing (the real crate's `iter_custom`): `f` is
    /// handed an iteration count and returns the elapsed wall time it
    /// measured itself. Use when the benchmarked region excludes setup
    /// that `iter` would otherwise time (e.g. spawning an SPMD world).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        black_box(f(1)); // warm-up
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            self.samples_ns.push(f(1).as_nanos() as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let sample_size = std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(sample_size);
    let mut b = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("bench {id:<50} (no samples)");
        return;
    }
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "bench {id:<50} mean {:>12}  min {:>12}  ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        b.samples_ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` executes harness-less bench targets with
            // `--test`; keep that mode fast and side-effect free.
            if std::env::args().any(|a| a == "--test") {
                std::env::set_var("CRITERION_SAMPLES", "1");
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_function("work", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(3u64.pow(7))
            });
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        // warm-up + 2 samples
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 8).text, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").text, "x");
    }
}
