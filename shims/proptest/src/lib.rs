//! Minimal `proptest` stand-in for offline builds.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`strategy::Strategy`] trait over ranges / tuples / arrays /
//! [`strategy::Just`] / `prop_oneof!` unions / `prop::collection::vec`,
//! plus the [`proptest!`] runner macro with `prop_assert!`,
//! `prop_assert_eq!` and `prop_assume!`. Differences from the real crate:
//! generation is a fixed deterministic PRNG seeded from the test's module
//! path (reproducible across runs, no `PROPTEST_*` env handling) and there
//! is **no shrinking** — a failing case reports its assertion message only.

pub mod test_runner {
    //! Deterministic runner state: RNG, config and case outcome.

    /// Runner configuration (`with_cases` is the only knob the workspace
    /// uses).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// `prop_assert!`-family failure; the test panics.
        Fail(String),
    }

    /// SplitMix64 PRNG — deterministic per test, stable across runs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (FNV-1a of the name).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h | 1 }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53-bit resolution.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A generator of random values (no shrinking in this shim).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produce a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let pick = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for collection strategies. Constructed via
    /// `Into` from `usize` ranges so call sites read like real proptest's
    /// (`vec(elem, 1..8)` infers `usize` for the literals).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for a `Vec` with element strategy `S` and length drawn
    /// from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A `Vec<S::Value>` of length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.hi_inclusive - self.len.lo + 1) as u64;
            let n = self.len.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-imported surface (`use proptest::prelude::*`).

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniformly choose one of the listed strategies each draw.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} != {:?})", format!($($fmt)+), l, r);
    }};
}

/// Reject the current case (draw fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).max(1024),
                    "proptest: too many rejected cases ({accepted} accepted of {} wanted)",
                    config.cases
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {accepted} failed: {msg}");
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let u = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let i = (2usize..=5).generate(&mut rng);
            assert!((2..=5).contains(&i));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let big = (0u64..u64::MAX).generate(&mut rng);
            assert!(big < u64::MAX);
        }
    }

    #[test]
    fn determinism_per_seed_name() {
        let draw = |name: &str| {
            let mut rng = crate::test_runner::TestRng::deterministic(name);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw("a"), draw("a"));
        assert_ne!(draw("a"), draw("b"));
    }

    #[test]
    fn oneof_union_and_map() {
        let mut rng = crate::test_runner::TestRng::deterministic("union");
        let s = prop_oneof![Just(1u32), Just(2), Just(3)].prop_map(|v| v * 10);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, [10u32, 20, 30].into_iter().collect());
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("vec");
        let s = prop::collection::vec(0.0f64..1.0, 1..8);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 0usize..10), c in 1u64..100) {
            prop_assume!(a != 3);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c, c, "c must equal itself");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_message() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
